//! The Aceso client: INSERT / UPDATE / SEARCH / DELETE over one-sided verbs.
//!
//! Clients execute every KV request without involving MN CPUs (§3.1):
//!
//! * **Commits** follow Algorithm 1 (slot versioning): one `RDMA_CAS` on the
//!   slot's Atomic word is the commit point; every 256th update to a slot
//!   additionally walks the Meta-epoch lock protocol; lost races invalidate
//!   the orphaned KV pair by stamping Slot Version −1.
//! * **Writes** append the KV pair to the client's open DATA block and its
//!   XOR delta to the two DELTA blocks on the parity-holding MNs, all in one
//!   doorbell batch (§3.3.2).
//! * **Reads** go through the local index cache, which stores both the slot
//!   *value* and the slot *address*, so a hit costs one batched round trip
//!   of `KV read + 16 B slot re-read` (§3.5.1).
//! * **Degraded reads** reconstruct just the needed slot range from one
//!   X-Code parity chain when the block's MN is down (§3.4.1).
//!
//! A client is owned by one thread, mirroring one client coroutine of the
//! paper's testbed.

use crate::cache::{CacheEntry, IndexCache};
use crate::config::{pack_col, unpack_col, ClientTuning, MemoryMap};
use crate::kv::{self, INVALID_SLOT_VERSION, SLOT_VER_OFF};
use crate::placement::{PlacementMap, PlacementSnapshot};
use crate::proto::{ServerReq, ServerResp};
use crate::server::Directory;
use crate::{Result, StoreError};
use aceso_blockalloc::{BlockId, BlockRecord, CellKind};
use aceso_erasure::{xor_into, XCode};
use aceso_index::slot::slot_version;
use aceso_index::{fingerprint, route_hash, RemoteIndex, SlotAtomic, SlotMeta};
use aceso_obs::{Counter, Histogram, Obs, Registry};
use aceso_rdma::{Cluster, DmClient, GlobalAddr, NodeId, OpKind, OpRecord, RdmaError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Protocol-step injection sites in the commit path (Algorithm 1).
///
/// This is the shared crash-site vocabulary used by the crash-consistency
/// tests and the `aceso-chaos` matrix runner: setting
/// [`AcesoClient::crash_point`] makes the *next* operation that reaches the
/// site return [`StoreError::Shutdown`] mid-protocol, leaving memory in
/// exactly the state a client crash at that step would leave it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CrashPoint {
    /// Crash after allocating the KV slot, before any fabric write.
    BeforeKvWrite,
    /// Crash after writing the KV slot but before the delta slots.
    AfterKvWrite,
    /// Crash after KV + delta writes, before the commit CAS.
    BeforeCommit,
    /// Crash right after a successful commit CAS, before the obsolete
    /// mark / Meta refresh / cache update.
    AfterCommit,
    /// Crash while holding the slot's Meta-epoch lock (version rollover or
    /// lock-break path, Algorithm 1 lines 7–13) — the lock is left for the
    /// next writer to break.
    WhileMetaLocked,
}

impl CrashPoint {
    /// Every site, in protocol order (matrix enumeration).
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::BeforeKvWrite,
        CrashPoint::AfterKvWrite,
        CrashPoint::BeforeCommit,
        CrashPoint::AfterCommit,
        CrashPoint::WhileMetaLocked,
    ];
}

impl core::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CrashPoint::BeforeKvWrite => "before-kv-write",
            CrashPoint::AfterKvWrite => "after-kv-write",
            CrashPoint::BeforeCommit => "before-commit",
            CrashPoint::AfterCommit => "after-commit",
            CrashPoint::WhileMetaLocked => "while-meta-locked",
        };
        f.write_str(s)
    }
}

/// Deliberate protocol weakenings for checker-liveness self-tests.
///
/// The exhaustive explorer (`aceso-model`) proves its oracles are alive by
/// re-running its scenarios with exactly one ordering edge of the commit
/// protocol removed and asserting a violation is found, in the same spirit
/// as `aceso-san`'s detector self-tests. Setting
/// [`AcesoClient::mutation`] makes *every* operation of that client run the
/// weakened protocol; production code never sets it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelMutation {
    /// Skip the commit CAS on the Atomic word but report the commit as
    /// successful — an acknowledged update that no reader can ever see.
    SkipCommitCas,
    /// Issue the two delta writes *after* the commit CAS instead of
    /// before it, reopening the torn window Algorithm 1 closes: a crash
    /// between commit and delta write leaves an acknowledged-visible KV
    /// whose rollback repair un-publishes it.
    ReorderDeltaPastCommit,
    /// Never break a stale Meta-epoch lock left by a crashed client —
    /// writers give up instead (§3.2.2 remark 2 removed), so a crash
    /// while locked wedges the slot forever.
    SkipLockBreak,
}

impl core::fmt::Display for ModelMutation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ModelMutation::SkipCommitCas => "skip-commit-cas",
            ModelMutation::ReorderDeltaPastCommit => "reorder-delta-past-commit",
            ModelMutation::SkipLockBreak => "skip-lock-break",
        };
        f.write_str(s)
    }
}

#[derive(Clone, Copy, Debug)]
struct DeltaRef {
    col: usize,
    block_off: u64,
    parity_row: usize,
}

struct OpenBlock {
    col: usize,
    block: BlockId,
    array: u64,
    row: usize,
    block_off: u64,
    slot_bytes: usize,
    fill_order: Vec<u32>,
    next: usize,
    deltas: [DeltaRef; 2],
    old_copy: Option<Vec<u8>>,
}

/// Pre-resolved metric handles for one operation kind. Resolved once at
/// client creation so the enabled hot path never does a name lookup.
struct OpMetrics {
    count: Counter,
    verbs: Counter,
    cas: Counter,
    retries: Counter,
    lat_us: Histogram,
    batch_depth: Histogram,
    batches: Histogram,
    batched_verbs: Counter,
}

impl OpMetrics {
    fn new(reg: &Registry, kind: OpKind) -> Self {
        let k = kind.name().to_ascii_lowercase();
        OpMetrics {
            count: reg.counter(&format!("client.{k}.count")),
            verbs: reg.counter(&format!("client.{k}.verbs")),
            cas: reg.counter(&format!("client.{k}.cas")),
            retries: reg.counter(&format!("client.{k}.retries")),
            lat_us: reg.histogram(&format!("client.{k}.us")),
            batch_depth: reg.histogram(&format!("client.{k}.batch_depth")),
            batches: reg.histogram(&format!("client.{k}.batches")),
            batched_verbs: reg.counter(&format!("client.{k}.batched_verbs")),
        }
    }
}

/// Per-client observability handles; present only when the owning store
/// has a recorder installed (see `AcesoStore::install_recorder`).
struct ClientMetrics {
    ops: [OpMetrics; 4],
    commit_retries: Counter,
    recovery_waits: Counter,
    degraded_reads: Counter,
    retry_attempts: Counter,
    retry_exhausted: Counter,
}

impl ClientMetrics {
    fn new(reg: &Registry) -> Self {
        ClientMetrics {
            ops: OpKind::ALL.map(|k| OpMetrics::new(reg, k)),
            commit_retries: reg.counter("client.commit.cas_retries"),
            recovery_waits: reg.counter("client.commit.recovery_waits"),
            degraded_reads: reg.counter("client.search.degraded"),
            retry_attempts: reg.counter("client.retry.attempts"),
            retry_exhausted: reg.counter("client.retry.exhausted"),
        }
    }

    fn op(&self, kind: OpKind) -> &OpMetrics {
        let i = OpKind::ALL.iter().position(|k| *k == kind).unwrap();
        &self.ops[i]
    }

    /// Attaches a completed op profile to the per-kind metrics: verb
    /// counts, CAS count, commit retries and doorbell-batch shape (depth
    /// of the deepest batch, batches per op, verbs that rode in one).
    fn record(&self, rec: &OpRecord) {
        let m = self.op(rec.kind);
        m.count.inc();
        m.verbs.add(rec.verbs as u64);
        m.cas.add(rec.cas as u64);
        m.retries.add(rec.retries as u64);
        m.batch_depth.record(rec.batch_max as f64);
        m.batches.record(rec.batches as f64);
        m.batched_verbs.add(rec.batched_verbs as u64);
    }
}

struct SlotPlace {
    col: usize,
    kv_off: u64,
    slot_bytes: usize,
    packed: u64,
    deltas: [(usize, u64); 2],
    old_slot: Option<Vec<u8>>,
    block: BlockId,
}

/// The unified retry/backoff policy: every retry loop in the client — index
/// verbs across a recovery window, the commit loop, the elastic migrator's
/// per-batch RPCs — charges attempts against one budget and backs off with
/// a deterministic exponential schedule on *virtual* CQ time
/// ([`DmClient::backoff`]), never the wall clock, so pipelined runs and
/// chaos matrices replay identically.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RetryPolicy {
    budget: usize,
    attempts: usize,
    base_us: u64,
    cap_us: u64,
}

impl RetryPolicy {
    /// A policy allowing `budget` retries, backing off 500 µs on the first
    /// and 1 ms on every later one (so a budget expressed in milliseconds —
    /// like `ClientTuning::index_wait_ms` — still waits about that long).
    pub(crate) fn new(budget: usize) -> Self {
        RetryPolicy {
            budget,
            attempts: 0,
            base_us: 500,
            cap_us: 1000,
        }
    }

    /// Charges one attempt: `Some(backoff µs)` while budget remains,
    /// `None` once exhausted. Callers decide whether to actually back off
    /// (CAS contention retries re-resolve immediately).
    pub(crate) fn charge(&mut self) -> Option<u64> {
        if self.attempts >= self.budget {
            return None;
        }
        let us = (self.base_us << self.attempts.min(8)).min(self.cap_us);
        self.attempts += 1;
        Some(us)
    }
}

/// A client endpoint of the Aceso store.
pub struct AcesoClient {
    cluster: Arc<Cluster>,
    dir: Arc<Directory>,
    map: MemoryMap,
    /// The store-wide placement map (elastic migration).
    placement: Arc<PlacementMap>,
    /// The placement snapshot this client currently operates under; stale
    /// snapshots are rejected by epoch fences and refreshed via
    /// [`AcesoClient::refresh_placement`].
    pl: Arc<PlacementSnapshot>,
    xcode: XCode,
    /// The underlying fabric client (benches read its profiles).
    pub dm: DmClient,
    cli_id: u32,
    tuning: ClientTuning,
    bitmap_flush_every: usize,
    blocks: BTreeMap<u8, OpenBlock>,
    /// The bounded, hotness-aware index cache (see [`crate::cache`]).
    cache: IndexCache,
    /// Invalidation writes for speculation-lost KVs, deferred so they can
    /// ride inside the next doorbell batch of the same operation instead
    /// of paying their own round trip. Always drained before the
    /// operation returns (see `upsert`). Stored as `(col, off, bytes)` —
    /// the physical node (and any migration mirror) is resolved at flush
    /// time, so a placement change between defer and drain cannot strand
    /// the write on a retired node.
    pending_inval: Vec<(usize, u64, [u8; 8])>,
    pending_bits: BTreeMap<(usize, BlockId), Vec<u32>>,
    pending_count: usize,
    alloc_rr: usize,
    /// Armed injection site: the next operation reaching it aborts with
    /// [`StoreError::Shutdown`], simulating a client crash mid-protocol.
    pub crash_point: Option<CrashPoint>,
    /// Armed protocol weakening (checker-liveness self-tests only); see
    /// [`ModelMutation`].
    pub mutation: Option<ModelMutation>,
    /// Delta writes held back by [`ModelMutation::ReorderDeltaPastCommit`],
    /// issued after the commit CAS instead of inside the write batch.
    deferred_deltas: Vec<(usize, u64, Vec<u8>)>,
    /// Pre-resolved metric handles; `None` (the default) keeps every
    /// probe on the existing no-recorder fast path.
    metrics: Option<ClientMetrics>,
}

impl AcesoClient {
    /// Creates a client (used by `AcesoStore::client`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cluster: Arc<Cluster>,
        dir: Arc<Directory>,
        map: MemoryMap,
        placement: Arc<PlacementMap>,
        cli_id: u32,
        tuning: ClientTuning,
        bitmap_flush_every: usize,
        obs: Obs,
    ) -> Self {
        let n = map.blocks.n;
        let dm = cluster.client();
        let pl = placement.snapshot();
        // Declare the snapshot's epoch on the fabric client: ranges fenced
        // at a *newer* epoch must reject this client until it refreshes
        // (the client's u64::MAX default would bypass every fence).
        dm.set_placement_epoch(pl.epoch);
        let cache = IndexCache::new(
            tuning.cache_capacity,
            obs.registry().map(|r| r.as_ref()),
        );
        AcesoClient {
            dm,
            cluster,
            dir,
            map,
            placement,
            pl,
            xcode: XCode::new(n).expect("validated by config"),
            cli_id,
            tuning,
            bitmap_flush_every,
            blocks: BTreeMap::new(),
            cache,
            pending_inval: Vec::new(),
            pending_bits: BTreeMap::new(),
            pending_count: 0,
            alloc_rr: cli_id as usize,
            crash_point: None,
            mutation: None,
            deferred_deltas: Vec::new(),
            metrics: obs.registry().map(|r| ClientMetrics::new(r)),
        }
    }

    /// This client's id (CLI ID in block records).
    pub fn id(&self) -> u32 {
        self.cli_id
    }

    /// Adjusts feature switches (factor analysis).
    pub fn set_tuning(&mut self, tuning: ClientTuning) {
        self.tuning = tuning;
        self.cache.set_capacity(tuning.cache_capacity);
        if !tuning.use_cache {
            self.cache.clear();
        }
    }

    /// Number of entries currently held by the index cache (tests and
    /// factor analysis).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the index cache currently holds `key` (tests).
    pub fn cache_contains(&self, key: &[u8]) -> bool {
        self.cache.contains(key)
    }

    /// Adopts the latest placement snapshot immediately, as an epoch fence
    /// bounce would (tests exercising the cache-purge protocol without
    /// having to provoke a fence).
    #[doc(hidden)]
    pub fn force_refresh_placement(&mut self) {
        self.refresh_placement();
    }

    #[inline]
    fn n(&self) -> usize {
        self.map.blocks.n
    }

    /// The physical node currently serving `(col, off)`: the placement
    /// snapshot's override when the column is mid-migration, otherwise the
    /// directory (index/meta areas, unmoved groups, non-migrating columns).
    #[inline]
    fn node_of(&self, col: usize, off: u64) -> NodeId {
        self.pl
            .resolve(col, off, &self.map)
            .unwrap_or_else(|| self.dir.node_of(col))
    }

    #[inline]
    fn addr(&self, col: usize, off: u64) -> GlobalAddr {
        GlobalAddr::new(self.node_of(col, off), off)
    }

    /// Adopts the latest placement snapshot after an epoch fence, purging
    /// every cache entry the change could have invalidated:
    ///
    /// * entries whose slot address points at a **retired** node — the
    ///   retired memory may still respond, but nothing on it is current;
    /// * entries whose index column or KV column **changed placement after
    ///   the entry was filled** ([`PlacementSnapshot::col_epoch`] vs the
    ///   entry's fill epoch). This is the case retirement alone misses: a
    ///   mid-migration column already serves some offsets from the target
    ///   while its source is not retired yet, and once this client adopts
    ///   the new epoch the fences no longer bounce it — a stale cached
    ///   physical address would read (or CAS) through to the wrong side
    ///   undetected.
    fn refresh_placement(&mut self) {
        self.pl = self.placement.snapshot();
        self.dm.set_placement_epoch(self.pl.epoch);
        let pl = Arc::clone(&self.pl);
        if pl.retired.is_empty() && pl.col_epochs.is_empty() {
            return;
        }
        let n = self.n() as u64;
        self.cache.purge(|key, e| {
            if pl.retired.contains(&e.slot_addr.node) {
                return true;
            }
            let index_col = (route_hash(key) % n) as usize;
            let (kv_col, _) = unpack_col(e.atomic.addr48);
            pl.col_epoch(index_col) > e.fill_epoch || pl.col_epoch(kv_col) > e.fill_epoch
        });
    }

    /// Charges one attempt against `policy`, tracking the unified
    /// `client.retry.{attempts,exhausted}` counters.
    fn charge_retry(&self, policy: &mut RetryPolicy) -> Option<u64> {
        match policy.charge() {
            Some(us) => {
                if let Some(m) = &self.metrics {
                    m.retry_attempts.inc();
                }
                Some(us)
            }
            None => {
                if let Some(m) = &self.metrics {
                    m.retry_exhausted.inc();
                }
                None
            }
        }
    }

    /// Block-area write, placement-aware: the primary goes first (so an
    /// epoch fence aborts the batch before any byte lands), then the
    /// dual-write mirror while a migration window is open — both sides of
    /// an in-flight move stay byte-fresh, which is what makes aborting a
    /// migration (and recovering through the directory) safe.
    fn write_block(
        &self,
        dm: &DmClient,
        col: usize,
        off: u64,
        bytes: &[u8],
    ) -> aceso_rdma::Result<()> {
        dm.write(GlobalAddr::new(self.node_of(col, off), off), bytes)?;
        if let Some(node) = self.pl.mirror(col, off, &self.map) {
            dm.write(GlobalAddr::new(node, off), bytes)?;
        }
        Ok(())
    }

    /// Inline (≤ 64 B) variant of [`AcesoClient::write_block`].
    fn write_block_inline(
        &self,
        dm: &DmClient,
        col: usize,
        off: u64,
        bytes: &[u8],
    ) -> aceso_rdma::Result<()> {
        dm.write_inline(GlobalAddr::new(self.node_of(col, off), off), bytes)?;
        if let Some(node) = self.pl.mirror(col, off, &self.map) {
            dm.write_inline(GlobalAddr::new(node, off), bytes)?;
        }
        Ok(())
    }

    fn index_of(&self, key: &[u8]) -> (usize, RemoteIndex) {
        let col = (route_hash(key) % self.n() as u64) as usize;
        (col, RemoteIndex::new(self.dir.node_of(col), self.map.index))
    }

    fn rpc(&self, col: usize, req: ServerReq, bytes: usize) -> Result<ServerResp> {
        Ok(self
            .dm
            .rpc(self.dir.node_of(col), &self.dir.rpc_of(col), req, bytes)?)
    }

    // ---- Public API -----------------------------------------------------

    /// Inserts (or overwrites) `key` with `value`.
    ///
    /// ```
    /// use aceso_core::{AcesoConfig, AcesoStore};
    ///
    /// let store = AcesoStore::launch(AcesoConfig::small()).unwrap();
    /// let mut client = store.client().unwrap();
    /// client.insert(b"user1", b"alice").unwrap();
    /// client.update(b"user1", b"bob").unwrap();
    /// assert_eq!(client.search(b"user1").unwrap(), Some(b"bob".to_vec()));
    /// assert!(client.delete(b"user1").unwrap());
    /// assert_eq!(client.search(b"user1").unwrap(), None);
    /// ```
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let cq = self.dm.cq();
        aceso_rdma::cq::block_on(cq, self.insert_async(key, value))
    }

    /// Updates an existing key; `NotFound` if absent.
    pub fn update(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let cq = self.dm.cq();
        aceso_rdma::cq::block_on(cq, self.update_async(key, value))
    }

    /// Deletes a key by committing a tombstone; returns whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let cq = self.dm.cq();
        aceso_rdma::cq::block_on(cq, self.delete_async(key))
    }

    /// Point lookup.
    pub fn search(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let cq = self.dm.cq();
        aceso_rdma::cq::block_on(cq, self.search_async(key))
    }

    // ---- Async API (coroutine pipelining, see `aceso-rt`) ---------------
    //
    // Each op is a resumable state machine that suspends at every fabric
    // round trip (`DmClient::settle`). With a completion queue attached
    // (`self.dm.attach_cq`) and many client tasks multiplexed on one
    // `aceso_rt::Executor`, suspended round trips overlap exactly like the
    // paper's client coroutines. The blocking API above is a thin
    // `block_on` wrapper, so protocol behaviour — commit points, crash
    // sites, trace ids — is identical in both modes.

    /// Async [`AcesoClient::insert`]: suspends at each fabric round trip.
    pub async fn insert_async(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let _span = self.op_span(OpKind::Insert);
        self.dm.begin_op();
        let r = self.upsert(key, value, false, true).await;
        self.dm.settle().await;
        self.finish_op(&r, OpKind::Insert);
        r.map(|_| ())
    }

    /// Async [`AcesoClient::update`]: suspends at each fabric round trip.
    pub async fn update_async(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let _span = self.op_span(OpKind::Update);
        self.dm.begin_op();
        let r = self.upsert(key, value, false, false).await;
        self.dm.settle().await;
        self.finish_op(&r, OpKind::Update);
        r.map(|_| ())
    }

    /// Async [`AcesoClient::delete`]: suspends at each fabric round trip.
    pub async fn delete_async(&mut self, key: &[u8]) -> Result<bool> {
        let _span = self.op_span(OpKind::Delete);
        self.dm.begin_op();
        let r = self.upsert(key, b"", true, false).await;
        self.dm.settle().await;
        match r {
            Ok(()) => {
                self.note_finished(OpKind::Delete);
                Ok(true)
            }
            Err(StoreError::NotFound) => {
                self.note_finished(OpKind::Delete);
                Ok(false)
            }
            Err(e) => {
                self.dm.abort_op();
                Err(e)
            }
        }
    }

    /// Async [`AcesoClient::search`]: suspends at each fabric round trip.
    pub async fn search_async(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let _span = self.op_span(OpKind::Search);
        self.dm.begin_op();
        let mut fenced = RetryPolicy::new(8);
        let r = loop {
            match self.search_inner(key).await {
                Err(StoreError::Rdma(RdmaError::EpochFenced { .. }))
                    if self.charge_retry(&mut fenced).is_some() =>
                {
                    // A KV read hit a migration fence through a stale
                    // placement (or a stale cached physical address):
                    // refresh and re-resolve from the index.
                    self.cache.invalidate(key);
                    self.refresh_placement();
                }
                r => break r,
            }
        };
        self.dm.settle().await;
        self.finish_op(&r, OpKind::Search);
        r
    }

    /// Flushes buffered obsolete-KV bits to the MN servers.
    pub fn flush_bitmaps(&mut self) -> Result<()> {
        let pending = std::mem::take(&mut self.pending_bits);
        self.pending_count = 0;
        let mut by_col: BTreeMap<usize, Vec<(BlockId, Vec<u32>)>> = BTreeMap::new();
        for ((col, block), slots) in pending {
            by_col.entry(col).or_default().push((block, slots));
        }
        for (col, updates) in by_col {
            let bytes = 16 * updates.len() + 64;
            self.rpc(col, ServerReq::BitmapFlush { updates }, bytes)?
                .expect_ok()?;
        }
        Ok(())
    }

    /// Drops the local index cache (tests and factor analysis).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Starts the wall-clock span for one API call; `None` keeps the
    /// uninstrumented fast path (no clock read).
    fn op_span(&self, kind: OpKind) -> Option<aceso_obs::HistTimer> {
        self.metrics.as_ref().map(|m| m.op(kind).lat_us.start_timer())
    }

    /// Ends profiling and attaches the op profile to the metrics.
    fn note_finished(&self, kind: OpKind) {
        let rec = self.dm.end_op(kind);
        if let (Some(m), Some(rec)) = (&self.metrics, rec) {
            m.record(&rec);
        }
    }

    fn finish_op<T>(&self, r: &Result<T>, kind: OpKind) {
        match r {
            Ok(_) => self.note_finished(kind),
            Err(_) => self.dm.abort_op(),
        }
    }

    /// Aborts mid-protocol if `site` is the armed crash point.
    fn maybe_crash(&self, site: CrashPoint) -> Result<()> {
        if self.crash_point == Some(site) {
            return Err(StoreError::Shutdown);
        }
        Ok(())
    }

    // ---- SEARCH ---------------------------------------------------------

    async fn search_inner(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let fp = fingerprint(key);
        if self.tuning.use_cache {
            if let Some(entry) = self.cache.get(key) {
                if self.tuning.cache_slot_addr {
                    // A `None` falls through to a full query.
                    if let Some(found) = self.search_via_cache(key, fp, entry).await? {
                        return Ok(found);
                    }
                } else if let Some(found) = self.search_value_cache(key, fp, entry).await? {
                    return Ok(found);
                }
            }
        }
        self.search_query(key, fp).await
    }

    /// Full Aceso cache hit: batched `KV read + slot re-read` (§3.5.1).
    /// Outer `None` means the cache entry was unusable (fall back).
    async fn search_via_cache(
        &mut self,
        key: &[u8],
        fp: u8,
        entry: CacheEntry,
    ) -> Result<Option<Option<Vec<u8>>>> {
        let len = (entry.meta.len64.max(1) as usize) * 64;
        let (kv_col, kv_off) = unpack_col(entry.atomic.addr48);
        let mut kv_buf: Result<Vec<u8>> = Ok(Vec::new());
        let mut slot: Result<_> = Err(StoreError::NotFound);
        self.dm.batch(|dm| {
            kv_buf = dm
                .read_vec(self.addr(kv_col, kv_off), len)
                .map_err(StoreError::from);
            slot = RemoteIndex::new(entry.slot_addr.node, self.map.index)
                .read_slot(dm, entry.slot_addr)
                .map_err(StoreError::from);
        });
        self.dm.settle().await;
        let Ok(slot) = slot else {
            // Index MN unreachable (mid-recovery): drop entry, full query.
            self.cache.invalidate(key);
            return Ok(None);
        };
        if slot.atomic == entry.atomic {
            let value = match kv_buf {
                Ok(buf) => match kv::decode(&buf) {
                    Some(d) if d.key == key => self.value_of(d),
                    _ => self.fetch_kv_degraded(kv_col, kv_off, len, key).await?,
                },
                Err(_) => self.fetch_kv_degraded(kv_col, kv_off, len, key).await?,
            };
            match value {
                Some(v) => return Ok(Some(v)),
                None => {
                    // The slot still points here but the bytes are not this
                    // key's KV (collision / unreconstructable): drop the
                    // stale entry and fall back to a full query.
                    self.cache.invalidate(key);
                    return Ok(None);
                }
            }
        }
        // Slot changed: chase the new pointer if it still matches this key.
        if !slot.atomic.is_empty() && slot.atomic.fp == fp {
            let v = self.read_and_verify(slot.atomic, slot.meta, key).await?;
            if let Some(val) = v {
                self.cache.insert(
                    key.to_vec(),
                    CacheEntry {
                        slot_addr: entry.slot_addr,
                        atomic: slot.atomic,
                        meta: slot.meta,
                        tombstone: val.is_none(),
                        fill_epoch: self.pl.epoch,
                    },
                );
                return Ok(Some(val));
            }
        }
        self.cache.invalidate(key);
        Ok(None)
    }

    /// FUSEE-style value-only cache (factor analysis baseline): the slot
    /// address is unknown, so validation re-reads the key's buckets.
    async fn search_value_cache(
        &mut self,
        key: &[u8],
        fp: u8,
        entry: CacheEntry,
    ) -> Result<Option<Option<Vec<u8>>>> {
        let len = (entry.meta.len64.max(1) as usize) * 64;
        let (kv_col, kv_off) = unpack_col(entry.atomic.addr48);
        let (_, index) = self.index_of(key);
        let mut kv_buf: Result<Vec<u8>> = Ok(Vec::new());
        let mut scan = Err(StoreError::NotFound);
        self.dm.batch(|dm| {
            kv_buf = dm
                .read_vec(self.addr(kv_col, kv_off), len)
                .map_err(StoreError::from);
            scan = index.scan(dm, key, fp).map_err(StoreError::from);
        });
        self.dm.settle().await;
        let Ok(scan) = scan else {
            self.cache.invalidate(key);
            return Ok(None);
        };
        for cand in &scan.matches {
            if cand.atomic.addr48 == entry.atomic.addr48 {
                // Cache still current.
                if let Ok(buf) = &kv_buf {
                    if let Some(d) = kv::decode(buf) {
                        if d.key == key {
                            return Ok(Some(self.value_of(d).and_then(|v| v)));
                        }
                    }
                }
                if let Some(v) = self.fetch_kv_degraded(kv_col, kv_off, len, key).await? {
                    return Ok(Some(v));
                }
                // Collision on the degraded fetch: the cached address holds
                // a different key's KV. Rescan the fresh candidates below.
                break;
            }
        }
        self.cache.invalidate(key);
        // Use the fresh scan directly rather than re-scanning.
        self.search_candidates(key, scan.matches).await.map(Some)
    }

    async fn search_query(&mut self, key: &[u8], fp: u8) -> Result<Option<Vec<u8>>> {
        let (_, index) = self.index_of(key);
        let scan = self.with_index_retry(|dm| index.scan(dm, key, fp))?;
        self.dm.settle().await;
        self.search_candidates(key, scan.matches).await
    }

    async fn search_candidates(
        &mut self,
        key: &[u8],
        candidates: Vec<aceso_index::SlotRef>,
    ) -> Result<Option<Vec<u8>>> {
        // Overlap the candidate KV reads in one doorbell batch: they are
        // independent, so fingerprint collisions cost chained WQEs instead
        // of extra round trips. Verification still walks candidates in
        // bucket order, so the first verified match wins as before.
        let mut reads: Vec<(usize, u64, usize, aceso_rdma::Result<Vec<u8>>)> =
            Vec::with_capacity(candidates.len());
        if candidates.len() > 1 {
            self.dm.batch(|dm| {
                for cand in &candidates {
                    let (col, off) = unpack_col(cand.atomic.addr48);
                    let hint = (cand.meta.len64.max(4) as usize) * 64;
                    let r = dm.read_vec(self.addr(col, off), hint);
                    reads.push((col, off, hint, r));
                }
            });
            self.dm.settle().await;
        }
        for (i, cand) in candidates.iter().enumerate() {
            let val = match reads.get_mut(i) {
                Some((col, off, hint, read)) => {
                    let read = std::mem::replace(read, Ok(Vec::new()));
                    let (col, off, hint) = (*col, *off, *hint);
                    self.classify_kv_read(read, col, off, hint, key).await?
                }
                None => self.read_and_verify(cand.atomic, cand.meta, key).await?,
            };
            if let Some(val) = val {
                if self.tuning.use_cache {
                    self.cache.insert(
                        key.to_vec(),
                        CacheEntry {
                            slot_addr: cand.addr,
                            atomic: cand.atomic,
                            meta: cand.meta,
                            tombstone: val.is_none(),
                            fill_epoch: self.pl.epoch,
                        },
                    );
                }
                return Ok(val);
            }
        }
        Ok(None)
    }

    /// Reads the KV a slot points at and verifies the key. Returns
    /// `None` if the KV belongs to a different key (fingerprint collision);
    /// `Some(None)` for a tombstone; `Some(Some(v))` for a live value.
    #[allow(clippy::type_complexity)]
    async fn read_and_verify(
        &mut self,
        atomic: SlotAtomic,
        meta: SlotMeta,
        key: &[u8],
    ) -> Result<Option<Option<Vec<u8>>>> {
        let (col, off) = unpack_col(atomic.addr48);
        let hint = (meta.len64.max(4) as usize) * 64;
        let read = self.dm.read_vec(self.addr(col, off), hint);
        self.dm.settle().await;
        self.classify_kv_read(read, col, off, hint, key).await
    }

    /// Classifies one candidate KV read (possibly prefetched in a doorbell
    /// batch) into the tri-state of [`Self::read_and_verify`].
    ///
    /// Only two situations route to the X-Code degraded reconstruct: an
    /// unreachable node, and a slot that reads back *unwritten* (write
    /// version 0 — a zeroed, not-yet-recovered block on a replacement MN).
    /// Every other decode failure on a healthy node is content that simply
    /// is not this key's live KV — a stale or colliding slot — and must be
    /// reported as a collision (`None`) so the candidate scan continues.
    #[allow(clippy::type_complexity)]
    async fn classify_kv_read(
        &mut self,
        read: aceso_rdma::Result<Vec<u8>>,
        col: usize,
        off: u64,
        hint: usize,
        key: &[u8],
    ) -> Result<Option<Option<Vec<u8>>>> {
        match read {
            Ok(buf) => {
                if let Some(d) = kv::decode(&buf) {
                    if d.key != key {
                        return Ok(None);
                    }
                    if d.is_invalidated() {
                        return Ok(None);
                    }
                    return Ok(Some(self.value_of(d).and_then(|v| v)));
                }
                if buf.is_empty() || buf[0] == 0 {
                    // Unwritten bytes on a reachable node: an unrecovered
                    // block on a replacement MN → degraded read.
                    return self.fetch_kv_degraded(col, off, hint, key).await;
                }
                // Truncated read (stale len64)? Retry with the header's own
                // sizes, but only if the header is plausible: a valid write
                // version, a length that really exceeds the hint, and a
                // size class that exists. Anything else is stale/foreign
                // content, i.e. a collision — not a degraded block.
                if buf.len() >= kv::KV_HEADER && buf[0] <= 2 {
                    let klen = u16::from_le_bytes(buf[2..4].try_into().unwrap()) as usize;
                    let vlen = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
                    let need = kv::KV_HEADER + klen + vlen + 1;
                    if need > hint && need <= (u8::MAX as usize) * 64 {
                        if let Ok(class) = kv::class_for(klen, vlen) {
                            let full = self.dm.read_vec(self.addr(col, off), class as usize * 64);
                            self.dm.settle().await;
                            let full = full?;
                            if let Some(d) = kv::decode(&full) {
                                if d.key == key && !d.is_invalidated() {
                                    return Ok(Some(self.value_of(d).and_then(|v| v)));
                                }
                            }
                        }
                    }
                }
                Ok(None)
            }
            Err(RdmaError::NodeUnreachable(_)) => self.fetch_kv_degraded(col, off, hint, key).await,
            Err(e) => Err(e.into()),
        }
    }

    fn value_of(&self, d: kv::DecodedKv<'_>) -> Option<Option<Vec<u8>>> {
        if d.tombstone {
            Some(None)
        } else {
            Some(Some(d.value.to_vec()))
        }
    }

    // ---- Degraded SEARCH (§3.4.1) ----------------------------------------

    /// Reconstructs the slot-range bytes of a KV whose block is unavailable,
    /// by XORing the same byte range of one parity chain (plus deltas).
    ///
    /// Same tri-state as [`Self::read_and_verify`]: `None` is a fingerprint
    /// collision (the reconstructed KV belongs to a different key — keep
    /// scanning), `Some(None)` a tombstone, `Some(Some(v))` a live value.
    #[allow(clippy::type_complexity)]
    async fn fetch_kv_degraded(
        &mut self,
        col: usize,
        off: u64,
        len: usize,
        key: &[u8],
    ) -> Result<Option<Option<Vec<u8>>>> {
        if let Some(m) = &self.metrics {
            m.degraded_reads.inc();
        }
        let buf = self.reconstruct_range(col, off, len);
        self.dm.settle().await;
        let buf = buf?;
        match kv::decode(&buf) {
            Some(d) if d.key == key && !d.is_invalidated() => Ok(self.value_of(d)),
            _ => Ok(None),
        }
    }

    /// Range-limited X-Code reconstruction:
    /// `C_t = P ⊕ ⊕_{k≠t, encoded}(C_k ⊕ D_k) ⊕ D_t` over one chain.
    fn reconstruct_range(&mut self, col: usize, off: u64, len: usize) -> Result<Vec<u8>> {
        let (block, within) = self.map.blocks.locate(off).ok_or(StoreError::NotFound)?;
        let CellKind::Data { array, row } = self.map.blocks.kind_of(block) else {
            return Err(StoreError::NotFound);
        };
        let (diag, anti) = self.xcode.parity_cells_for(row, col);
        let mut last_err = StoreError::NotFound;
        for (prow, pcol) in [diag, anti] {
            match self.reconstruct_via_chain(array, row, prow, pcol, within, len) {
                Ok(buf) => return Ok(buf),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn reconstruct_via_chain(
        &mut self,
        array: u64,
        row: usize,
        parity_row: usize,
        parity_col: usize,
        within: u64,
        len: usize,
    ) -> Result<Vec<u8>> {
        let pid = self.map.blocks.cell_block_id(array, parity_row);
        let resp = self.rpc(parity_col, ServerReq::GetRecord { block: pid }, 16)?;
        let ServerResp::Record { bytes } = resp else {
            return Err(StoreError::NotFound);
        };
        let prec = BlockRecord::decode(&bytes, self.map.blocks.block_size);

        let eq = self
            .xcode
            .equations()
            .into_iter()
            .find(|e| e.parity_row == parity_row && e.parity_col == parity_col)
            .expect("chain equation exists");

        let mut acc = vec![0u8; len];
        let target_encoded = prec.xor_map & (1 << row) != 0;
        if target_encoded {
            let poff = self.map.blocks.block_offset(pid) + within;
            let p = self.dm.read_vec(self.addr(parity_col, poff), len)?;
            xor_into(&mut acc, &p);
            for &(r, c) in &eq.data {
                if r == row {
                    continue;
                }
                if prec.xor_map & (1 << r) != 0 {
                    let cid = self.map.blocks.cell_block_id(array, r);
                    let coff = self.map.blocks.block_offset(cid) + within;
                    let cbuf = self.dm.read_vec(self.addr(c, coff), len)?;
                    xor_into(&mut acc, &cbuf);
                    if prec.delta_addr[r] != 0 {
                        let (dc, doff) = unpack_col(prec.delta_addr[r]);
                        let dbuf = self.dm.read_vec(self.addr(dc, doff + within), len)?;
                        xor_into(&mut acc, &dbuf);
                    }
                }
            }
        }
        if prec.delta_addr[row] != 0 {
            let (dc, doff) = unpack_col(prec.delta_addr[row]);
            let dbuf = self.dm.read_vec(self.addr(dc, doff + within), len)?;
            xor_into(&mut acc, &dbuf);
        }
        Ok(acc)
    }

    // ---- Write path (Algorithm 1) ----------------------------------------

    async fn upsert(
        &mut self,
        key: &[u8],
        value: &[u8],
        tombstone: bool,
        allow_insert: bool,
    ) -> Result<()> {
        let r = self.upsert_inner(key, value, tombstone, allow_insert).await;
        // Invalidations deferred by a speculation loss normally drain
        // inside a later batch of the same op; any remainder (e.g. the op
        // ended in NotFound before another write) goes out now. A
        // simulated crash skips this on purpose — a dead client posts
        // nothing, which is exactly the window recovery must tolerate.
        if !matches!(r, Err(StoreError::Shutdown)) {
            self.flush_invals()?;
            self.dm.settle().await;
        }
        r
    }

    async fn upsert_inner(
        &mut self,
        key: &[u8],
        value: &[u8],
        tombstone: bool,
        allow_insert: bool,
    ) -> Result<()> {
        if key.is_empty() {
            return Err(StoreError::TooLarge);
        }
        let fp = fingerprint(key);
        let class = kv::class_for(key.len(), value.len())?;

        let mut policy = RetryPolicy::new(self.tuning.max_retries);
        loop {
            // Re-resolve the index partition each attempt: the column may
            // have moved to a replacement MN mid-recovery.
            let (_, index) = self.index_of(key);
            // Locate the slot (cache first, then scan + verify).
            let outcome = async {
                // Cache hit on a plain update: speculate and fold the slot
                // revalidation into the write batch (one RTT saved).
                if let Some(entry) = self.pipelined_entry(key, allow_insert) {
                    return self
                        .commit_update_pipelined(
                            &index,
                            key,
                            value,
                            tombstone,
                            fp,
                            class,
                            allow_insert,
                            entry,
                        )
                        .await;
                }
                match self.locate_slot(&index, key, fp).await? {
                    Located::Existing(slot_addr, atomic, meta, was_tombstone) => {
                        if was_tombstone && !allow_insert {
                            // UPDATE/DELETE of a deleted key.
                            return Err(StoreError::NotFound);
                        }
                        self.commit_update(
                            &index, key, value, tombstone, fp, class, slot_addr, atomic, meta,
                        )
                        .await
                    }
                    Located::Absent(empties) => {
                        if !allow_insert {
                            return Err(StoreError::NotFound);
                        }
                        let Some(target) = empties.first().copied() else {
                            return Err(StoreError::IndexFull);
                        };
                        self.commit_insert(&index, key, value, tombstone, fp, class, target)
                            .await
                    }
                }
            }
            .await;
            match outcome {
                Ok(CommitOutcome::Done) => return Ok(()),
                Ok(CommitOutcome::Retry) => {
                    // CAS contention: re-resolve immediately, no backoff —
                    // the conflicting commit already changed the words we
                    // will re-read.
                    if self.charge_retry(&mut policy).is_none() {
                        break;
                    }
                    self.dm.note_retry();
                    if let Some(m) = &self.metrics {
                        m.commit_retries.inc();
                    }
                }
                Err(StoreError::Rdma(RdmaError::NodeUnreachable(_))) => {
                    // Mid-recovery: wait for the replacement to publish.
                    let Some(us) = self.charge_retry(&mut policy) else {
                        break;
                    };
                    self.dm.backoff(us);
                    self.dm.note_retry();
                    if let Some(m) = &self.metrics {
                        m.recovery_waits.inc();
                    }
                }
                Err(StoreError::Rdma(RdmaError::EpochFenced { .. })) => {
                    // Mid-migration: this client's placement snapshot is
                    // stale. Refresh and re-resolve — no backoff needed,
                    // the new snapshot is immediately current.
                    if self.charge_retry(&mut policy).is_none() {
                        break;
                    }
                    self.refresh_placement();
                    self.dm.note_retry();
                }
                Err(e) => return Err(e),
            }
        }
        Err(StoreError::RetriesExhausted)
    }

    /// Whether the next commit attempt may take the pipelined fast path:
    /// a cached slot address whose state needs no slow-path protocol —
    /// no tombstone revalidation (UPDATE/DELETE of a deleted key must
    /// report `NotFound`), no version rollover, no Meta-epoch lock.
    fn pipelined_entry(&mut self, key: &[u8], allow_insert: bool) -> Option<CacheEntry> {
        if !(self.tuning.use_cache && self.tuning.cache_slot_addr) {
            return None;
        }
        let e = self.cache.get(key)?;
        if e.tombstone && !allow_insert {
            return None;
        }
        if e.atomic.is_empty() || e.atomic.ver == 0xFF || e.meta.is_locked() {
            return None;
        }
        Some(e)
    }

    async fn locate_slot(&mut self, index: &RemoteIndex, key: &[u8], fp: u8) -> Result<Located> {
        if self.tuning.use_cache && self.tuning.cache_slot_addr {
            // `peek`: the lookup was already counted by `pipelined_entry`.
            if let Some(e) = self.cache.peek(key) {
                // Re-read the slot: commits need fresh Atomic/Meta words.
                let slot = self.with_index_retry(|dm| index.read_slot(dm, e.slot_addr));
                self.dm.settle().await;
                match slot {
                    Ok(s) if s.atomic == e.atomic => {
                        // Unchanged since we cached it: the tombstone state
                        // is known without touching the KV.
                        return Ok(Located::Existing(s.addr, s.atomic, s.meta, e.tombstone));
                    }
                    Ok(s) if !s.atomic.is_empty() && s.atomic.fp == fp => {
                        // Same slot, new KV: verify it is still our key.
                        if let Some((verified, tomb)) =
                            self.verify_kv(s.atomic, s.meta, key).await?
                        {
                            if verified {
                                return Ok(Located::Existing(s.addr, s.atomic, s.meta, tomb));
                            }
                        }
                        self.cache.invalidate(key);
                    }
                    _ => {
                        self.cache.invalidate(key);
                    }
                }
            }
        }
        let scan = self.with_index_retry(|dm| index.scan(dm, key, fp));
        self.dm.settle().await;
        let scan = scan?;
        for cand in &scan.matches {
            if let Some((true, tomb)) = self.verify_kv(cand.atomic, cand.meta, key).await? {
                return Ok(Located::Existing(cand.addr, cand.atomic, cand.meta, tomb));
            }
        }
        Ok(Located::Absent(scan.empties))
    }

    /// Reads the KV a slot points at; returns `Some((key_matches,
    /// is_tombstone))`, or `None` when the KV is unreadable even via
    /// reconstruction.
    async fn verify_kv(
        &mut self,
        atomic: SlotAtomic,
        meta: SlotMeta,
        key: &[u8],
    ) -> Result<Option<(bool, bool)>> {
        let (col, off) = unpack_col(atomic.addr48);
        let hint = (meta.len64.max(4) as usize) * 64;
        let read = self.dm.read_vec(self.addr(col, off), hint);
        self.dm.settle().await;
        let direct = match read {
            Ok(buf) => kv::decode(&buf).map(|d| (d.key == key, d.tombstone)),
            Err(RdmaError::NodeUnreachable(_)) => None,
            Err(e) => return Err(e.into()),
        };
        if direct.is_some() {
            return Ok(direct);
        }
        // Unrecovered or unreachable block: reconstruct the range.
        let rebuilt = self.reconstruct_range(col, off, hint);
        self.dm.settle().await;
        Ok(rebuilt
            .ok()
            .and_then(|b| kv::decode(&b).map(|d| (d.key == key, d.tombstone))))
    }

    /// One committed update attempt per Algorithm 1.
    #[allow(clippy::too_many_arguments)]
    async fn commit_update(
        &mut self,
        index: &RemoteIndex,
        key: &[u8],
        value: &[u8],
        tombstone: bool,
        fp: u8,
        class: u8,
        slot_addr: GlobalAddr,
        atomic: SlotAtomic,
        mut meta: SlotMeta,
    ) -> Result<CommitOutcome> {
        // Meta locked by another client: wait briefly, then break the lock
        // (its holder may have crashed), per §3.2.2 remark 2. Each probe
        // settles its round trip, so a suspended lock holder on the same
        // executor thread gets scheduled between probes instead of being
        // spun against forever.
        let mut lock_pair: Option<(SlotMeta, SlotMeta)> = None;
        if meta.is_locked() {
            let mut spins = 0;
            loop {
                let s = index.read_slot(&self.dm, slot_addr);
                self.dm.settle().await;
                let s = s?;
                meta = s.meta;
                if !meta.is_locked() {
                    return Ok(CommitOutcome::Retry); // Re-locate with fresh state.
                }
                spins += 1;
                if spins >= 50 {
                    if self.mutation == Some(ModelMutation::SkipLockBreak) {
                        // Mutation: give up instead of breaking the stale
                        // lock — the liveness the oracle must catch losing.
                        return Err(StoreError::RetriesExhausted);
                    }
                    // Break: re-lock at the next odd epoch.
                    let relock = SlotMeta {
                        len64: meta.len64,
                        epoch: meta.epoch + 2,
                    };
                    let seen = index.cas_meta(&self.dm, slot_addr, meta, relock);
                    self.dm.settle().await;
                    let seen = seen?;
                    if seen != meta {
                        return Ok(CommitOutcome::Retry);
                    }
                    let unlocked = SlotMeta {
                        len64: relock.len64,
                        epoch: relock.epoch + 1,
                    };
                    lock_pair = Some((relock, unlocked));
                    self.maybe_crash(CrashPoint::WhileMetaLocked)?;
                    break;
                }
                std::hint::spin_loop();
            }
        } else if atomic.ver == 0xFF {
            // Version rollover: lock the Meta (Algorithm 1 lines 7–13).
            // The lock/unlock CAS pair on the Meta word is an
            // acquire/release bracket: every write between them is ordered
            // against the next holder's accesses (aceso-san's
            // skip-lock-cas self-test checks this edge stays load-bearing).
            let locked = SlotMeta {
                len64: meta.len64,
                epoch: meta.epoch + 1,
            };
            let seen = index.cas_meta(&self.dm, slot_addr, meta, locked);
            self.dm.settle().await;
            let seen = seen?;
            if seen != meta {
                return Ok(CommitOutcome::Retry);
            }
            let unlocked = SlotMeta {
                len64: locked.len64,
                epoch: locked.epoch + 1,
            };
            lock_pair = Some((locked, unlocked));
            self.maybe_crash(CrashPoint::WhileMetaLocked)?;
        }

        let commit_epoch = match &lock_pair {
            Some((_, unlocked)) => unlocked.epoch,
            None => meta.epoch,
        };
        let new_ver = atomic.ver.wrapping_add(1);
        let sv = slot_version(commit_epoch, new_ver);

        let place = self.alloc_slot(class);
        self.dm.settle().await;
        let place = place?;
        self.write_kv(&place, sv, key, value, tombstone, None).await?;

        let new_atomic = SlotAtomic {
            fp,
            addr48: place.packed,
            ver: new_ver,
        };
        // Commit point (Algorithm 1 line 15). This CAS is the *release*
        // edge that publishes the KV bytes written above: it must stay
        // after `write_kv`, and readers must reach the KV only through the
        // Atomic word it lands on (aceso-san derives happens-before from
        // exactly this ordering — see the skip-commit-cas and
        // commit-before-write self-tests).
        let prev = if self.mutation == Some(ModelMutation::SkipCommitCas) {
            // Mutation: report the commit as won without issuing the CAS.
            atomic
        } else {
            let prev = index.cas_atomic(&self.dm, slot_addr, atomic, new_atomic);
            self.dm.settle().await;
            prev?
        };
        let committed = prev == atomic;
        self.flush_deferred_deltas().await?;
        if committed {
            self.maybe_crash(CrashPoint::AfterCommit)?;
        }
        if !committed {
            self.defer_invalidate(&place);
            if lock_pair.is_some() {
                // Keep the lock bracket conservative: retire the lost KV
                // before the unlock CAS releases the Meta epoch.
                self.flush_invals()?;
                self.dm.settle().await;
            }
        }
        if let Some((locked, unlocked)) = lock_pair {
            // Unlock regardless of commit outcome (Algorithm 1 line 19-20).
            let unlock = index.cas_meta(&self.dm, slot_addr, locked, unlocked);
            self.dm.settle().await;
            let _ = unlock?;
        }
        if !committed {
            return Ok(CommitOutcome::Retry);
        }

        // Mark the overwritten KV obsolete for delta-based reclamation.
        self.mark_obsolete(atomic.addr48, meta.len64);
        // Refresh the advisory length if the size class changed.
        let new_meta = SlotMeta {
            len64: class,
            epoch: commit_epoch,
        };
        if meta.len64 != class && lock_pair.is_none() {
            let wm = index.write_meta(&self.dm, slot_addr, new_meta);
            self.dm.settle().await;
            wm?;
        }
        if self.tuning.use_cache {
            self.cache.insert(
                key.to_vec(),
                CacheEntry {
                    slot_addr,
                    atomic: new_atomic,
                    meta: new_meta,
                    tombstone,
                    fill_epoch: self.pl.epoch,
                },
            );
        }
        self.maybe_flush()?;
        self.dm.settle().await;
        Ok(CommitOutcome::Done)
    }

    /// Pipelined cache-hit commit (the doorbell-batched fast path).
    ///
    /// Instead of re-reading the slot in its own round trip before writing
    /// (as `locate_slot` + `commit_update` do), the revalidating slot read
    /// rides in the *same* doorbell batch as the KV + delta writes, cutting
    /// the common-path UPDATE from three dependent round trips to two:
    ///
    /// 1. one batch: `slot re-read ∥ KV write ∥ delta write ×2`
    /// 2. commit CAS on the Atomic word (the release edge — never batched)
    ///
    /// This is speculative: the slot version is computed from the cached
    /// Atomic/Meta words, and the batch's fresh slot read must confirm them
    /// *before* the CAS. When the speculation loses, the already-written KV
    /// is retired exactly like a lost CAS race — but its invalidation is
    /// *deferred* into the redo attempt's write batch, and the fresh slot
    /// words the batch already fetched seed that redo directly (verify the
    /// key, then `commit_update` on the fresh state), so a lost speculation
    /// costs the same four round trips as the pre-pipeline stale-cache
    /// path.
    #[allow(clippy::too_many_arguments)]
    async fn commit_update_pipelined(
        &mut self,
        index: &RemoteIndex,
        key: &[u8],
        value: &[u8],
        tombstone: bool,
        fp: u8,
        class: u8,
        allow_insert: bool,
        entry: CacheEntry,
    ) -> Result<CommitOutcome> {
        let new_ver = entry.atomic.ver.wrapping_add(1);
        let sv = slot_version(entry.meta.epoch, new_ver);
        let place = self.alloc_slot(class);
        self.dm.settle().await;
        let place = place?;
        let written = self
            .write_kv(&place, sv, key, value, tombstone, Some((index, entry.slot_addr)))
            .await;
        let slot = match written {
            Ok(slot) => slot.expect("revalidate requested"),
            Err(e) => {
                // The cached slot address may name a dead or pre-recovery
                // MN: drop it so the retry re-resolves on the slow path
                // instead of spinning on the same unreachable node.
                self.cache.invalidate(key);
                return Err(e);
            }
        };
        if slot.atomic != entry.atomic || slot.meta != entry.meta || slot.meta.is_locked() {
            // Speculation lost: someone committed (or locked) under us.
            // Any mutation-held delta writes still belong to the retired
            // slot image — land them so its invalidation fix-ups stay
            // parity-linear.
            self.flush_deferred_deltas().await?;
            self.defer_invalidate(&place);
            self.cache.invalidate(key);
            if !slot.meta.is_locked()
                && !slot.atomic.is_empty()
                && slot.atomic.fp == fp
                && slot.atomic.ver != 0xFF
            {
                // The slot moved on but still carries our fingerprint —
                // almost certainly a concurrent update of this very key.
                // Redo on the fresh words without re-scanning.
                return self
                    .redo_pipelined(
                        index,
                        key,
                        value,
                        tombstone,
                        fp,
                        class,
                        allow_insert,
                        entry.slot_addr,
                        slot,
                    )
                    .await;
            }
            return Ok(CommitOutcome::Retry);
        }
        let new_atomic = SlotAtomic {
            fp,
            addr48: place.packed,
            ver: new_ver,
        };
        // Commit point: the same release edge as `commit_update` — the CAS
        // publishes the batch above and must stay strictly after it.
        let prev = if self.mutation == Some(ModelMutation::SkipCommitCas) {
            // Mutation: report the commit as won without issuing the CAS.
            entry.atomic
        } else {
            let prev = index.cas_atomic(&self.dm, entry.slot_addr, entry.atomic, new_atomic);
            self.dm.settle().await;
            prev?
        };
        let committed = prev == entry.atomic;
        self.flush_deferred_deltas().await?;
        if committed {
            self.maybe_crash(CrashPoint::AfterCommit)?;
        }
        if !committed {
            self.defer_invalidate(&place);
            self.cache.invalidate(key);
            return Ok(CommitOutcome::Retry);
        }
        self.mark_obsolete(entry.atomic.addr48, entry.meta.len64);
        let new_meta = SlotMeta {
            len64: class,
            epoch: entry.meta.epoch,
        };
        if entry.meta.len64 != class {
            let wm = index.write_meta(&self.dm, entry.slot_addr, new_meta);
            self.dm.settle().await;
            wm?;
        }
        self.cache.insert(
            key.to_vec(),
            CacheEntry {
                slot_addr: entry.slot_addr,
                atomic: new_atomic,
                meta: new_meta,
                tombstone,
                fill_epoch: self.pl.epoch,
            },
        );
        self.maybe_flush()?;
        self.dm.settle().await;
        Ok(CommitOutcome::Done)
    }

    /// Second speculation after a lost one: the failed revalidation read
    /// returned the slot's *fresh* Atomic/Meta words, which pin the next
    /// slot version — only the commit decision (is the fresh KV really our
    /// key, and not a tombstone?) depends on the KV bytes. So the identity
    /// read rides in the same doorbell batch as the redo's KV + delta
    /// writes (plus the deferred invalidation of the first loss), keeping
    /// the whole lost-speculation path at three round trips: the lost
    /// batch, this batch, and the commit CAS.
    #[allow(clippy::too_many_arguments)]
    async fn redo_pipelined(
        &mut self,
        index: &RemoteIndex,
        key: &[u8],
        value: &[u8],
        tombstone: bool,
        fp: u8,
        class: u8,
        allow_insert: bool,
        slot_addr: GlobalAddr,
        fresh: aceso_index::SlotRef,
    ) -> Result<CommitOutcome> {
        let new_ver = fresh.atomic.ver.wrapping_add(1);
        let sv = slot_version(fresh.meta.epoch, new_ver);
        let (kv_col, kv_off) = unpack_col(fresh.atomic.addr48);
        let hint = (fresh.meta.len64.max(4) as usize) * 64;
        let place = self.alloc_slot(class);
        self.dm.settle().await;
        let place = place?;
        let (buf, delta) = Self::encode_kv(&place, sv, key, value, tombstone);

        self.maybe_crash(CrashPoint::BeforeKvWrite)?;
        let crash = self.crash_point;
        let defer = self.mutation == Some(ModelMutation::ReorderDeltaPastCommit);
        let invals = std::mem::take(&mut self.pending_inval);
        let mut kv_read: aceso_rdma::Result<Vec<u8>> = Ok(Vec::new());
        let mut res: Result<()> = Ok(());
        self.dm.batch(|dm| {
            res = (|| -> Result<()> {
                kv_read = dm.read_vec(self.addr(kv_col, kv_off), hint);
                for (col, off, bytes) in &invals {
                    self.write_block_inline(dm, *col, *off, bytes)?;
                }
                self.write_block(dm, place.col, place.kv_off, &buf)?;
                if crash == Some(CrashPoint::AfterKvWrite) {
                    return Err(StoreError::Shutdown);
                }
                if !defer {
                    for (dcol, doff) in place.deltas {
                        self.write_block(dm, dcol, doff, &delta)?;
                    }
                }
                if crash == Some(CrashPoint::BeforeCommit) {
                    return Err(StoreError::Shutdown);
                }
                Ok(())
            })();
        });
        self.dm.settle().await;
        if res.is_err() {
            // Requeue on *any* batch abort (fence, unreachable node,
            // simulated crash), not just fences: a dropped invalidation
            // would leave a lost-race KV readable forever.
            self.pending_inval = invals;
        }
        if matches!(&res, Err(StoreError::Rdma(RdmaError::EpochFenced { .. }))) {
            self.unwind_fenced_place(&place).await?;
        }
        res?;
        if defer {
            // Mutation: the batch omitted the delta copies; hold them for
            // the post-commit flush.
            for (dcol, doff) in place.deltas {
                self.deferred_deltas.push((dcol, doff, delta.clone()));
            }
        }

        let identity = kv_read
            .ok()
            .and_then(|b| kv::decode(&b).map(|d| (d.key == key, d.tombstone, d.is_invalidated())));
        match identity {
            Some((true, tomb, false)) => {
                if tomb && !allow_insert {
                    // Concurrent delete won: surface it, retire our bytes.
                    self.flush_deferred_deltas().await?;
                    self.defer_invalidate(&place);
                    self.flush_invals()?;
                    self.dm.settle().await;
                    return Err(StoreError::NotFound);
                }
            }
            _ => {
                // Collision, invalidated KV, or unreadable bytes: back off
                // to the slow path, which verifies via reconstruction.
                self.flush_deferred_deltas().await?;
                self.defer_invalidate(&place);
                return Ok(CommitOutcome::Retry);
            }
        }

        let new_atomic = SlotAtomic {
            fp,
            addr48: place.packed,
            ver: new_ver,
        };
        // Commit point: release edge after the write batch, as always.
        let prev = if self.mutation == Some(ModelMutation::SkipCommitCas) {
            // Mutation: report the commit as won without issuing the CAS.
            fresh.atomic
        } else {
            let prev = index.cas_atomic(&self.dm, slot_addr, fresh.atomic, new_atomic);
            self.dm.settle().await;
            prev?
        };
        self.flush_deferred_deltas().await?;
        if prev != fresh.atomic {
            self.defer_invalidate(&place);
            return Ok(CommitOutcome::Retry);
        }
        self.maybe_crash(CrashPoint::AfterCommit)?;
        self.mark_obsolete(fresh.atomic.addr48, fresh.meta.len64);
        let new_meta = SlotMeta {
            len64: class,
            epoch: fresh.meta.epoch,
        };
        if fresh.meta.len64 != class {
            let wm = index.write_meta(&self.dm, slot_addr, new_meta);
            self.dm.settle().await;
            wm?;
        }
        if self.tuning.use_cache {
            self.cache.insert(
                key.to_vec(),
                CacheEntry {
                    slot_addr,
                    atomic: new_atomic,
                    meta: new_meta,
                    tombstone,
                    fill_epoch: self.pl.epoch,
                },
            );
        }
        self.maybe_flush()?;
        self.dm.settle().await;
        Ok(CommitOutcome::Done)
    }

    #[allow(clippy::too_many_arguments)]
    async fn commit_insert(
        &mut self,
        index: &RemoteIndex,
        key: &[u8],
        value: &[u8],
        tombstone: bool,
        fp: u8,
        class: u8,
        target: GlobalAddr,
    ) -> Result<CommitOutcome> {
        let sv = slot_version(0, 1);
        let place = self.alloc_slot(class);
        self.dm.settle().await;
        let place = place?;
        self.write_kv(&place, sv, key, value, tombstone, None).await?;
        let new_atomic = SlotAtomic {
            fp,
            addr48: place.packed,
            ver: 1,
        };
        // Commit point: the release edge publishing the freshly written KV
        // (same ordering obligation as the update commit CAS above).
        let prev = index.cas_atomic(&self.dm, target, SlotAtomic::default(), new_atomic);
        self.dm.settle().await;
        let prev = prev?;
        self.flush_deferred_deltas().await?;
        if !prev.is_empty() {
            self.defer_invalidate(&place);
            return Ok(CommitOutcome::Retry);
        }
        self.maybe_crash(CrashPoint::AfterCommit)?;
        let new_meta = SlotMeta {
            len64: class,
            epoch: 0,
        };
        let wm = index.write_meta(&self.dm, target, new_meta);
        self.dm.settle().await;
        wm?;
        if self.tuning.use_cache {
            self.cache.insert(
                key.to_vec(),
                CacheEntry {
                    slot_addr: target,
                    atomic: new_atomic,
                    meta: new_meta,
                    tombstone,
                    fill_epoch: self.pl.epoch,
                },
            );
        }
        self.maybe_flush()?;
        self.dm.settle().await;
        Ok(CommitOutcome::Done)
    }

    /// Writes the KV slot and both delta slots in one doorbell batch.
    ///
    /// With `revalidate`, the slot's Atomic/Meta words are re-read as the
    /// *first* verb of the same batch (the pipelined cache-hit commit,
    /// §3.5.1): the read is independent of the writes, so the whole group
    /// costs one round trip. If that read fails, the writes are skipped,
    /// the still-clean slot is handed back to the open block, and the read
    /// error propagates. The commit CAS stays strictly after this batch in
    /// every caller — it is the release edge that publishes these bytes.
    async fn write_kv(
        &mut self,
        place: &SlotPlace,
        sv: u64,
        key: &[u8],
        value: &[u8],
        tombstone: bool,
        revalidate: Option<(&RemoteIndex, GlobalAddr)>,
    ) -> Result<Option<aceso_index::SlotRef>> {
        let (buf, delta) = Self::encode_kv(place, sv, key, value, tombstone);
        self.maybe_crash(CrashPoint::BeforeKvWrite)?;
        let crash = self.crash_point;
        let defer = self.mutation == Some(ModelMutation::ReorderDeltaPastCommit);
        // Deferred invalidations of earlier speculation losses ride in
        // this batch (independent inline writes, no extra round trip).
        let invals = std::mem::take(&mut self.pending_inval);
        let mut slot_read: Option<aceso_rdma::Result<aceso_index::SlotRef>> = None;
        let mut res: Result<()> = Ok(());
        self.dm.batch(|dm| {
            res = (|| -> Result<()> {
                if let Some((index, addr)) = revalidate {
                    let r = index.read_slot(dm, addr);
                    let failed = r.is_err();
                    slot_read = Some(r);
                    if failed {
                        // Skip the writes: the slot stays unwritten so the
                        // caller can return it to the open block.
                        return Ok(());
                    }
                }
                for (col, off, bytes) in &invals {
                    self.write_block_inline(dm, *col, *off, bytes)?;
                }
                self.write_block(dm, place.col, place.kv_off, &buf)?;
                if crash == Some(CrashPoint::AfterKvWrite) {
                    return Err(StoreError::Shutdown);
                }
                if !defer {
                    for (dcol, doff) in place.deltas {
                        self.write_block(dm, dcol, doff, &delta)?;
                    }
                }
                if crash == Some(CrashPoint::BeforeCommit) {
                    return Err(StoreError::Shutdown);
                }
                Ok(())
            })();
        });
        self.dm.settle().await;
        let fence_abort = matches!(&res, Err(StoreError::Rdma(RdmaError::EpochFenced { .. })));
        if matches!(&slot_read, Some(Err(_))) || res.is_err() {
            // Writes were skipped (or aborted partway — fence bounce, an
            // unreachable node, a simulated crash): requeue the
            // invalidations so no error path silently drops them —
            // rewriting any that already landed is idempotent.
            self.pending_inval = invals;
        }
        if fence_abort {
            self.unwind_fenced_place(place).await?;
        }
        res?;
        if defer && !matches!(&slot_read, Some(Err(_))) {
            // Mutation: the batch omitted the delta copies; hold them for
            // the post-commit flush.
            for (dcol, doff) in place.deltas {
                self.deferred_deltas.push((dcol, doff, delta.clone()));
            }
        }
        match slot_read {
            Some(Ok(slot)) => Ok(Some(slot)),
            Some(Err(e)) => {
                self.unalloc_slot(place);
                Err(e.into())
            }
            None => Ok(None),
        }
    }

    /// Lands the delta writes held back by
    /// [`ModelMutation::ReorderDeltaPastCommit`] — strictly *after* the
    /// commit CAS, which is exactly the mis-ordering the mutation exists
    /// to inject. A no-op (no verbs, no suspension) when nothing is held.
    async fn flush_deferred_deltas(&mut self) -> Result<()> {
        if self.deferred_deltas.is_empty() {
            return Ok(());
        }
        let writes = std::mem::take(&mut self.deferred_deltas);
        let mut res: Result<()> = Ok(());
        self.dm.batch(|dm| {
            res = (|| -> Result<()> {
                for (dcol, doff, bytes) in &writes {
                    self.write_block(dm, *dcol, *doff, bytes)?;
                }
                Ok(())
            })();
        });
        self.dm.settle().await;
        res
    }

    /// Unwinds a write batch that bounced off an epoch fence after some
    /// of its verbs landed. The doorbell batch is not atomic: the KV slot
    /// and its two delta copies live on three different columns, so a
    /// migration fence can reject a later verb after an earlier one
    /// already wrote (e.g. the first delta copy's group has not moved yet
    /// while the second's just did). The retry then re-places the KV into
    /// a fresh slot, and without this rollback the abandoned slot would
    /// keep one delta copy with data and the other still zero — a
    /// divergence no recovery ever repairs, because nothing crashed.
    /// Restoring the slot to its allocation-time bytes (the old image for
    /// a reused block, zeros otherwise; delta copies to zero) under the
    /// *refreshed* placement re-establishes both the delta-copy agreement
    /// and the parity-linearity invariants, and handing the reservation
    /// back lets the retry reuse the slot.
    async fn unwind_fenced_place(&mut self, place: &SlotPlace) -> Result<()> {
        self.refresh_placement();
        let zeros = vec![0u8; place.slot_bytes];
        let old = place.old_slot.as_deref().unwrap_or(&zeros);
        let mut res: Result<()> = Ok(());
        self.dm.batch(|dm| {
            res = (|| -> Result<()> {
                self.write_block(dm, place.col, place.kv_off, old)?;
                for (dcol, doff) in place.deltas {
                    self.write_block(dm, dcol, doff, &zeros)?;
                }
                Ok(())
            })();
        });
        self.dm.settle().await;
        res?;
        self.unalloc_slot(place);
        Ok(())
    }

    /// Encodes the slot image and its XOR delta against the slot's old
    /// contents (shared by every write batch).
    fn encode_kv(
        place: &SlotPlace,
        sv: u64,
        key: &[u8],
        value: &[u8],
        tombstone: bool,
    ) -> (Vec<u8>, Vec<u8>) {
        let old: &[u8] = place.old_slot.as_deref().unwrap_or(&[]);
        let old_wv = if old.is_empty() { 0 } else { old[0] };
        let wv = kv::next_write_version(old_wv);
        let mut buf = vec![0u8; place.slot_bytes];
        kv::encode(&mut buf, wv, sv, key, value, tombstone);
        let mut delta = buf.clone();
        if !old.is_empty() {
            xor_into(&mut delta, old);
        }
        (buf, delta)
    }

    /// Returns a just-allocated, never-written slot to its open block (the
    /// pipelined revalidation read failed before any write was posted).
    fn unalloc_slot(&mut self, place: &SlotPlace) {
        let class = (place.slot_bytes / 64) as u8;
        if let Some(ob) = self.blocks.get_mut(&class) {
            if ob.block == place.block && ob.next > 0 {
                let prev = ob.fill_order[ob.next - 1] as u64;
                if ob.block_off + prev * ob.slot_bytes as u64 == place.kv_off {
                    ob.next -= 1;
                }
            }
        }
    }

    /// Queues the invalidation of a lost-race KV — Slot Version ← −1 with
    /// matching delta fix-ups so parity linearity is preserved — without
    /// posting it: the next doorbell batch of this operation carries the
    /// three inline writes for free (`write_kv` and `redo_pipelined` drain
    /// the queue), and `upsert` flushes any remainder before returning.
    fn defer_invalidate(&mut self, place: &SlotPlace) {
        let old8: [u8; 8] = match &place.old_slot {
            Some(old) => old[SLOT_VER_OFF..SLOT_VER_OFF + 8].try_into().unwrap(),
            None => [0u8; 8],
        };
        let inval = INVALID_SLOT_VERSION.to_le_bytes();
        let mut delta8 = inval;
        for (d, o) in delta8.iter_mut().zip(old8) {
            *d ^= o;
        }
        self.pending_inval
            .push((place.col, place.kv_off + SLOT_VER_OFF as u64, inval));
        for (dcol, doff) in place.deltas {
            self.pending_inval
                .push((dcol, doff + SLOT_VER_OFF as u64, delta8));
        }
        // The slot is consumed but worthless: reclaimable immediately.
        let slot_idx = self.slot_index_in_block(place);
        self.pending_bits
            .entry((place.col, place.block))
            .or_default()
            .push(slot_idx);
        self.pending_count += 1;
    }

    /// Posts any still-queued invalidation writes in one doorbell batch.
    /// On error the queue is restored (rewriting landed entries is
    /// idempotent), so a failed flush can be retried by a later batch or
    /// the next operation's drain instead of silently dropping the stamps.
    fn flush_invals(&mut self) -> Result<()> {
        if self.pending_inval.is_empty() {
            return Ok(());
        }
        let writes = std::mem::take(&mut self.pending_inval);
        let mut res: Result<()> = Ok(());
        self.dm.batch(|dm| {
            res = (|| -> Result<()> {
                for (col, off, bytes) in &writes {
                    self.write_block_inline(dm, *col, *off, bytes)?;
                }
                Ok(())
            })();
        });
        if res.is_err() {
            self.pending_inval = writes;
        }
        res
    }

    fn slot_index_in_block(&self, place: &SlotPlace) -> u32 {
        let (_, within) = self
            .map
            .blocks
            .locate(place.kv_off)
            .expect("kv in block area");
        (within / place.slot_bytes as u64) as u32
    }

    fn mark_obsolete(&mut self, packed: u64, len64: u8) {
        if len64 == 0 {
            return; // Stale advisory length: skip (bounded leak).
        }
        let (col, off) = unpack_col(packed);
        let Some((block, within)) = self.map.blocks.locate(off) else {
            return;
        };
        let slot = (within / (len64 as u64 * 64)) as u32;
        self.pending_bits
            .entry((col, block))
            .or_default()
            .push(slot);
        self.pending_count += 1;
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.pending_count >= self.bitmap_flush_every {
            self.flush_bitmaps()?;
        }
        Ok(())
    }

    // ---- Block management -------------------------------------------------

    fn alloc_slot(&mut self, class: u8) -> Result<SlotPlace> {
        loop {
            if let Some(ob) = self.blocks.get(&class) {
                if ob.next < ob.fill_order.len() {
                    break;
                }
                let ob = self.blocks.remove(&class).unwrap();
                self.close_block(ob)?;
            } else {
                let ob = self.open_block(class)?;
                self.blocks.insert(class, ob);
            }
        }
        let ob = self.blocks.get_mut(&class).unwrap();
        let slot = ob.fill_order[ob.next] as u64;
        ob.next += 1;
        let kv_off = ob.block_off + slot * ob.slot_bytes as u64;
        let old_slot = ob.old_copy.as_ref().map(|old| {
            old[(slot as usize) * ob.slot_bytes..(slot as usize + 1) * ob.slot_bytes].to_vec()
        });
        let place = SlotPlace {
            col: ob.col,
            kv_off,
            slot_bytes: ob.slot_bytes,
            packed: pack_col(ob.col, kv_off),
            deltas: [
                (
                    ob.deltas[0].col,
                    ob.deltas[0].block_off + slot * ob.slot_bytes as u64,
                ),
                (
                    ob.deltas[1].col,
                    ob.deltas[1].block_off + slot * ob.slot_bytes as u64,
                ),
            ],
            old_slot,
            block: ob.block,
        };
        Ok(place)
    }

    fn open_block(&mut self, class: u8) -> Result<OpenBlock> {
        let n = self.n();
        let mut last_err = StoreError::OutOfBlocks;
        for t in 0..n {
            let col = (self.alloc_rr + t) % n;
            match self.rpc(
                col,
                ServerReq::AllocData {
                    cli_id: self.cli_id,
                    slot_len64: class,
                },
                64,
            )? {
                ServerResp::DataAllocated {
                    block,
                    array,
                    row,
                    reused,
                    old_bitmap,
                } => {
                    self.alloc_rr = (col + 1) % n;
                    return self.finish_open(col, block, array, row, reused, old_bitmap, class);
                }
                ServerResp::Err(_) => {
                    last_err = StoreError::OutOfBlocks;
                    continue;
                }
                _ => return Err(StoreError::OutOfBlocks),
            }
        }
        Err(last_err)
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_open(
        &mut self,
        col: usize,
        block: BlockId,
        array: u64,
        row: usize,
        reused: bool,
        old_bitmap: Option<Vec<u8>>,
        class: u8,
    ) -> Result<OpenBlock> {
        let bs = self.map.blocks.block_size;
        let slot_bytes = class as usize * 64;
        let nslots = (bs / slot_bytes as u64) as usize;
        let (diag, anti) = self.xcode.parity_cells_for(row, col);
        let mut deltas = [DeltaRef {
            col: 0,
            block_off: 0,
            parity_row: 0,
        }; 2];
        for (i, (prow, pcol)) in [diag, anti].into_iter().enumerate() {
            let resp = self.rpc(
                pcol,
                ServerReq::AllocDelta {
                    cli_id: self.cli_id,
                    slot_len64: class,
                    array,
                    row,
                    parity_row: prow,
                },
                64,
            )?;
            let ServerResp::DeltaAllocated { block: dblock } = resp else {
                return Err(StoreError::OutOfBlocks);
            };
            deltas[i] = DeltaRef {
                col: pcol,
                block_off: self.map.blocks.block_offset(dblock),
                parity_row: prow,
            };
        }
        let block_off = self.map.blocks.block_offset(block);
        let (fill_order, old_copy) = if reused {
            let bitmap_bytes = old_bitmap.unwrap_or_default();
            let bitmap = aceso_blockalloc::Bitmap::from_bytes(nslots, &bitmap_bytes);
            // Read the whole reused block so overwrites can compute deltas
            // against the old contents (§3.3.3).
            let old = self.dm.read_vec(self.addr(col, block_off), bs as usize)?;
            (bitmap.ones().map(|s| s as u32).collect(), Some(old))
        } else {
            ((0..nslots as u32).collect(), None)
        };
        Ok(OpenBlock {
            col,
            block,
            array,
            row,
            block_off,
            slot_bytes,
            fill_order,
            next: 0,
            deltas,
            old_copy,
        })
    }

    fn close_block(&mut self, ob: OpenBlock) -> Result<()> {
        self.rpc(ob.col, ServerReq::DataFilled { block: ob.block }, 16)?
            .expect_ok()?;
        for d in ob.deltas {
            self.rpc(
                d.col,
                ServerReq::EncodeDelta {
                    array: ob.array,
                    row: ob.row,
                    parity_row: d.parity_row,
                },
                24,
            )?
            .expect_ok()?;
        }
        Ok(())
    }

    /// Closes all open blocks (phase end in benches; also used before
    /// planned shutdown so no block stays unfilled forever).
    pub fn close_open_blocks(&mut self) -> Result<()> {
        let classes: Vec<u8> = self.blocks.keys().copied().collect();
        for c in classes {
            // Mark the never-written tail slots obsolete so reclamation can
            // reuse them later.
            let ob = self.blocks.remove(&c).unwrap();
            let unwritten: Vec<u32> = ob.fill_order[ob.next..].to_vec();
            if !unwritten.is_empty() {
                self.pending_bits
                    .entry((ob.col, ob.block))
                    .or_default()
                    .extend(unwritten);
                self.pending_count += 1;
            }
            self.close_block(ob)?;
        }
        self.flush_bitmaps()
    }

    /// Retries an index operation across a short recovery window: verbs to
    /// a crashed MN fail until the replacement is published, matching the
    /// paper's "requests to the affected index range are blocked". An epoch
    /// fence (elastic migration in flight) instead refreshes the placement
    /// snapshot and retries immediately; the shared [`RetryPolicy`] budget
    /// bounds both loops.
    fn with_index_retry<T>(
        &mut self,
        mut f: impl FnMut(&DmClient) -> aceso_rdma::Result<T>,
    ) -> Result<T> {
        let mut policy = RetryPolicy::new(self.tuning.index_wait_ms as usize);
        loop {
            match f(&self.dm) {
                Ok(v) => return Ok(v),
                Err(e @ RdmaError::NodeUnreachable(_)) => {
                    let Some(us) = self.charge_retry(&mut policy) else {
                        return Err(e.into());
                    };
                    self.dm.backoff(us);
                }
                Err(e @ RdmaError::EpochFenced { .. }) => {
                    if self.charge_retry(&mut policy).is_none() {
                        return Err(e.into());
                    }
                    self.refresh_placement();
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// The cluster handle (tests, benches).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The memory map (recovery helpers).
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// The directory (recovery helpers).
    pub fn directory(&self) -> &Arc<Directory> {
        &self.dir
    }
}

enum Located {
    Existing(GlobalAddr, SlotAtomic, SlotMeta, bool),
    Absent(Vec<GlobalAddr>),
}

enum CommitOutcome {
    Done,
    Retry,
}
