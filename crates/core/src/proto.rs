//! Client ↔ MN-server RPC protocol.
//!
//! RPC is deliberately coarse-grained and off the critical path (§3.1):
//! block management, free-bitmap flushes, checkpoint control, and the
//! recovery-time bulk fetches of replicated state. Every KV request itself
//! runs purely over one-sided verbs.

use crate::ckpt::CkptReport;
use aceso_blockalloc::BlockId;

/// Requests a client (or the recovery orchestrator) sends to an MN server.
#[derive(Clone, Debug)]
pub enum ServerReq {
    /// Allocate a DATA block of the given size class on this MN.
    AllocData {
        /// Requesting client.
        cli_id: u32,
        /// KV slot size in 64 B units.
        slot_len64: u8,
    },
    /// Allocate a DELTA block on this MN (it holds a PARITY cell covering
    /// the given data cell) and register it in the parity record.
    AllocDelta {
        /// Requesting client.
        cli_id: u32,
        /// Size class (mirrors the data block).
        slot_len64: u8,
        /// Stripe array of the covered data cell.
        array: u64,
        /// Row of the covered data cell.
        row: usize,
        /// Which of this MN's parity rows covers it (`n−2` or `n−1`).
        parity_row: usize,
    },
    /// The client filled this DATA block: stamp the current Index Version.
    DataFilled {
        /// The filled block.
        block: BlockId,
    },
    /// Encode the registered DELTA block for `(array, row)` into this MN's
    /// PARITY cell at `parity_row`, then free the delta.
    EncodeDelta {
        /// Stripe array.
        array: u64,
        /// Covered data-cell row.
        row: usize,
        /// This MN's parity row.
        parity_row: usize,
    },
    /// Bulk obsolete-bit flush: `(block, set-bit indices)`.
    BitmapFlush {
        /// Per-block obsolete slot indices.
        updates: Vec<(BlockId, Vec<u32>)>,
    },
    /// Fetch one block's metadata record bytes.
    GetRecord {
        /// Which block.
        block: BlockId,
    },
    /// Fetch the server's local backup copy of a reused block (§3.3.3),
    /// used by CN crash recovery.
    GetOldCopy {
        /// Which block.
        block: BlockId,
    },
    /// List this MN's DATA block records (recovery scans; CN recovery).
    ListDataBlocks,
    /// Blocks currently owned (unfilled) by a client (CN recovery).
    QueryClientBlocks {
        /// The crashed client's id.
        cli_id: u32,
    },
    /// Run one checkpoint round now (store-driven tick; also used by the
    /// background loop's leader).
    CkptRound,
    /// Checkpoint delta arriving from the left-neighbour column.
    CkptDelta {
        /// Sender's column.
        from_column: usize,
        /// LZ-compressed XOR delta.
        compressed: Vec<u8>,
        /// Uncompressed delta length.
        raw_len: usize,
        /// The Index Version this checkpoint represents.
        index_version: u64,
    },
    /// Meta-Area replication: a record changed on the left neighbour.
    ReplicateRecord {
        /// Sender's column.
        from_column: usize,
        /// Which block.
        block: BlockId,
        /// Serialized record.
        bytes: Vec<u8>,
    },
    /// Recovery: fetch everything this server replicates for `of_column`.
    GetMetaReplica {
        /// The failed column.
        of_column: usize,
    },
    /// Recovery: fetch the checkpoint this server holds for `of_column`.
    GetCheckpoint {
        /// The failed column.
        of_column: usize,
    },
    /// Post-recovery: the right neighbour was replaced; re-send all records
    /// and make the next checkpoint round a full one.
    ResetReplication,
    /// Elastic migration: copy the given block-area byte ranges onto the
    /// migration target (installed out-of-band via
    /// [`MnServer::set_migration`](crate::server::MnServer::set_migration)).
    /// Running inside the RPC loop serializes the copy against every other
    /// server-side mutation of those ranges.
    MigrateBatch {
        /// `(region offset, length)` ranges to copy.
        ranges: Vec<(u64, usize)>,
    },
    /// Elastic migration: move this column's PARITY cells onto the target —
    /// quiescent stripes are *re-encoded* from the live data cells, busy
    /// ones byte-copied — then flip parity primaries to the target.
    MigrateParity,
    /// Elastic migration: copy the Index and Meta areas onto the target and
    /// stop serving; the migrator republishes the column on the target.
    MigrateFinish,
}

/// Responses.
#[derive(Clone, Debug)]
pub enum ServerResp {
    /// Generic success.
    Ok,
    /// Request failed (reason for logs/tests).
    Err(String),
    /// DATA block allocated.
    DataAllocated {
        /// The block.
        block: BlockId,
        /// Stripe array of the cell.
        array: u64,
        /// Row of the cell.
        row: usize,
        /// Reused (reclaimed) block? If so the old Free Bitmap follows.
        reused: bool,
        /// Old obsolete bits for a reused block.
        old_bitmap: Option<Vec<u8>>,
    },
    /// DELTA block allocated.
    DeltaAllocated {
        /// The block.
        block: BlockId,
    },
    /// One record's bytes.
    Record {
        /// Serialized [`aceso_blockalloc::BlockRecord`].
        bytes: Vec<u8>,
    },
    /// Backup copy of a reused block (None if already discarded).
    OldCopy {
        /// Raw block bytes.
        bytes: Option<Vec<u8>>,
    },
    /// Record list: `(block id, serialized record)`.
    Records {
        /// The records.
        list: Vec<(BlockId, Vec<u8>)>,
    },
    /// Checkpoint round finished.
    CkptDone {
        /// Per-step measurements.
        report: CkptReport,
    },
    /// Checkpoint delta applied (receiver-side timings, µs).
    CkptApplied {
        /// LZ decompression time.
        decompress_us: f64,
        /// XOR-apply time.
        xor_us: f64,
    },
    /// Replicated meta for a column.
    MetaReplica {
        /// `(block id, serialized record)`.
        records: Vec<(BlockId, Vec<u8>)>,
    },
    /// The checkpoint held for a column.
    Checkpoint {
        /// Raw (uncompressed) index bytes.
        data: Vec<u8>,
        /// Its Index Version.
        index_version: u64,
    },
}

impl ServerResp {
    /// Unwraps `Ok`, surfacing protocol violations as store errors.
    pub fn expect_ok(self) -> crate::Result<()> {
        match self {
            ServerResp::Ok => Ok(()),
            other => {
                debug_assert!(false, "unexpected rpc response: {other:?}");
                Err(crate::StoreError::Rdma(aceso_rdma::RdmaError::RpcClosed))
            }
        }
    }
}
