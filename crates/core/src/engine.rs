//! The pluggable fault-tolerance seam (`FtEngine` / `FtClient`).
//!
//! Aceso's central claim (paper §5, Table 3) is a *comparison*: hybrid
//! checkpoint+erasure versus full replication on write round trips, memory
//! overhead, and recovery time. To run that comparison live, the
//! strategy-specific halves of the store — the write/commit path, the
//! recovery path, and space accounting — are factored behind two
//! object-safe traits:
//!
//! - [`FtEngine`] is the server side: launch/kill/recover columns, account
//!   for space, verify strategy-specific integrity invariants.
//! - [`FtClient`] is the per-client op surface: `insert`/`update`/`search`/
//!   `delete` plus the fabric hooks (fault plans, op records) the chaos
//!   matrix and bench harness need.
//!
//! Three engines implement the seam:
//!
//! | Engine | Crate | Strategy |
//! |---|---|---|
//! | `aceso` | this crate ([`AcesoEngine`]) | delta-append + XOR parity + tiered recovery |
//! | `fusee` | `aceso-fusee` | replicated index + replicated KV blocks (FUSEE) |
//! | `swarm` | `aceso-engines` | in-place replication, 1-RTT doorbell write path (SWARM) |
//!
//! The traits are deliberately narrow: they cover exactly what the
//! three-way Table 3 bench (`bench table3`) and the per-backend crash
//! matrix (`chaos backends`) exercise, not every capability of every
//! engine. Engine-specific surfaces (Aceso's elastic membership, FUSEE's
//! cache controls) stay on the concrete types.

use crate::recovery::recover_cn;
use crate::store::AcesoStore;
use crate::{AcesoClient, AcesoConfig, ClientTuning, StoreError};
use aceso_rdma::{Cluster, FaultPlan, NodeId, OpStats};
use std::sync::Arc;

/// Errors crossing the engine seam.
///
/// The chaos runner needs to distinguish "the client crashed mid-op under
/// an injected fault" (expected — opens the commit ambiguity window) from
/// "the home node is unreachable" (expected while a planned kill is
/// outstanding) from a genuine protocol failure (a finding). Engine
/// implementations map their native error types onto these three classes;
/// `NotFound` is split out because UPDATE/DELETE of a missing key is an
/// API-level outcome, not a fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FtError {
    /// The client crashed mid-operation (injected crash point or injected
    /// verb fault). Its effects may be torn; the op's outcome is ambiguous.
    Crashed(String),
    /// A memory node the operation needs is dead (or retries were
    /// exhausted while it was). Expected while a planned kill is live.
    Unreachable(String),
    /// UPDATE or DELETE of a key that does not exist.
    NotFound,
    /// Any other failure (allocation, size envelope, harness errors…).
    Other(String),
}

impl core::fmt::Display for FtError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FtError::Crashed(e) => write!(f, "client crashed: {e}"),
            FtError::Unreachable(e) => write!(f, "node unreachable: {e}"),
            FtError::NotFound => write!(f, "key not found"),
            FtError::Other(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FtError {}

impl From<StoreError> for FtError {
    fn from(e: StoreError) -> Self {
        use aceso_rdma::RdmaError;
        match e {
            StoreError::Shutdown => FtError::Crashed(e.to_string()),
            StoreError::Rdma(RdmaError::Injected { .. }) => FtError::Crashed(e.to_string()),
            StoreError::Rdma(RdmaError::NodeUnreachable(_)) => FtError::Unreachable(e.to_string()),
            StoreError::RetriesExhausted => FtError::Unreachable(e.to_string()),
            StoreError::NotFound => FtError::NotFound,
            other => FtError::Other(other.to_string()),
        }
    }
}

/// Result type for the engine seam.
pub type FtResult<T> = core::result::Result<T, FtError>;

/// Strategy-agnostic space accounting (the Table 3 "memory overhead" row).
///
/// `valid` counts live user bytes once; `redundancy` is whatever the
/// strategy adds to survive failures (XOR parity for Aceso, the extra
/// `r-1` copies for replication); `delta` is log/delta space that exists
/// only for the hybrid scheme. The headline metric is
/// [`overhead_factor`](Self::overhead_factor).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpaceReport {
    /// Bytes of live (referenced) user KV data, counted once.
    pub valid: u64,
    /// Bytes of fault-tolerance redundancy (parity or extra replicas).
    pub redundancy: u64,
    /// Bytes of delta/log space (zero for pure replication).
    pub delta: u64,
    /// Bytes of allocated primary data space (valid + obsolete + slack).
    pub allocated: u64,
}

impl SpaceReport {
    /// Total footprint the paper compares: valid + redundancy + delta.
    pub fn total(&self) -> u64 {
        self.valid + self.redundancy + self.delta
    }

    /// Memory overhead factor: total footprint per byte of valid data
    /// (1.0 = no redundancy at all; replication with `r` copies ≈ `r`).
    pub fn overhead_factor(&self) -> f64 {
        if self.valid == 0 {
            0.0
        } else {
            self.total() as f64 / self.valid as f64
        }
    }
}

/// What one column recovery cost, in strategy-agnostic terms.
///
/// Only *modeled* quantities appear here — bytes actually moved and the
/// cost model's network milliseconds — so the summary is a pure function
/// of the seed and safe to commit in results files.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoverySummary {
    /// Modeled network milliseconds to restore the column (deterministic).
    pub net_ms: f64,
    /// Bytes transferred during recovery (deterministic).
    pub bytes: u64,
    /// KV pairs scanned or re-replicated.
    pub kvs: usize,
}

/// Per-client operation surface of one fault-tolerance engine.
///
/// Semantics shared by every implementation (asserted by the conformance
/// suite in `aceso-engines`):
///
/// - `insert` is an upsert; `update`/`delete` of a missing key report
///   [`FtError::NotFound`] / `Ok(false)` respectively.
/// - `search` of a deleted or never-inserted key returns `Ok(None)` —
///   engines whose delete leaves a tombstone normalize it away.
/// - A client that returns [`FtError::Crashed`] is dead: the caller drops
///   it and runs the engine's [`FtEngine::recover_client`].
pub trait FtClient {
    /// Inserts `key` → `value` (upsert: an existing key is overwritten).
    fn insert(&mut self, key: &[u8], value: &[u8]) -> FtResult<()>;
    /// Updates an existing key; [`FtError::NotFound`] if absent.
    fn update(&mut self, key: &[u8], value: &[u8]) -> FtResult<()>;
    /// Reads a key. `Ok(None)` = absent (including deleted).
    fn search(&mut self, key: &[u8]) -> FtResult<Option<Vec<u8>>>;
    /// Deletes a key; `Ok(false)` if it was absent.
    fn delete(&mut self, key: &[u8]) -> FtResult<bool>;
    /// Stable client id (used to revive a crashed client for recovery).
    fn id(&self) -> u32;
    /// Flushes any client-buffered state (bitmaps, open blocks) so
    /// server-side accounting and integrity checks see the truth.
    fn quiesce(&mut self) -> FtResult<()>;
    /// Arms a fault plan on this client's fabric endpoint.
    fn install_fault_plan(&mut self, plan: Arc<FaultPlan>);
    /// Drains the per-op fabric records accumulated since the last call.
    fn take_ops(&mut self) -> OpStats;
    /// Clears fabric counters without returning them.
    fn reset_stats(&mut self);
}

/// One fault-tolerance strategy, hosting a store and minting clients.
///
/// Object-safe: the bench and chaos harnesses drive `Box<dyn FtEngine>`
/// so every strategy runs the identical script.
///
/// ```
/// use aceso_core::engine::{AcesoEngine, FtEngine};
/// use aceso_core::AcesoConfig;
///
/// let cfg = AcesoConfig { index_groups: 128, ..AcesoConfig::small() };
/// let engine = AcesoEngine::launch(cfg).unwrap();
/// let eng: &dyn FtEngine = &engine;
///
/// let mut client = eng.client().unwrap();
/// client.insert(b"k", b"v1").unwrap();
/// client.update(b"k", b"v2").unwrap();
/// assert_eq!(client.search(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
///
/// // Kill the key's home column, recover it, and the key survives.
/// let col = eng.home_col(b"k");
/// assert!(eng.kill_column(col));
/// let summary = eng.recover_column(col).unwrap();
/// assert!(summary.bytes > 0);
/// assert_eq!(client.search(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
/// assert!(eng.check().unwrap().is_empty());
/// # eng.shutdown();
/// ```
pub trait FtEngine {
    /// Short stable name: `"aceso"`, `"fusee"`, or `"swarm"`.
    fn kind(&self) -> &'static str;
    /// Mints a fresh client.
    fn client(&self) -> FtResult<Box<dyn FtClient>>;
    /// Number of data columns (one per memory node at launch).
    fn columns(&self) -> usize;
    /// The node currently hosting `col` (kill rules target nodes).
    fn node_of(&self, col: usize) -> NodeId;
    /// Home column of a key (same `route_hash` for every engine, so the
    /// crash matrix aims kills identically across backends).
    fn home_col(&self, key: &[u8]) -> usize {
        (aceso_index::route_hash(key) % self.columns() as u64) as usize
    }
    /// Fail-stops the node hosting `col`. `false` if it was already dead.
    fn kill_column(&self, col: usize) -> bool;
    /// Restores `col` onto a replacement node and returns the modeled cost.
    fn recover_column(&self, col: usize) -> FtResult<RecoverySummary>;
    /// Recovers after a client crash (rolls back torn commits, reconciles
    /// divergent replicas — whatever the strategy requires).
    fn recover_client(&self, id: u32) -> FtResult<()>;
    /// Strategy-specific integrity check; returns violations (empty =
    /// clean). Aceso scrubs parity equations and delta pairs; replication
    /// engines check replica agreement.
    fn check(&self) -> FtResult<Vec<String>>;
    /// Periodic maintenance (Aceso's checkpoint round; no-op elsewhere).
    fn tick(&self) -> FtResult<()> {
        Ok(())
    }
    /// Space accounting for the memory-overhead comparison.
    fn space(&self) -> SpaceReport;
    /// The simulated fabric (trace sinks, barriers) backing this engine.
    fn cluster(&self) -> &Arc<Cluster>;
    /// Releases background threads. Idempotent.
    fn shutdown(&self);
}

// ---------------------------------------------------------------------------
// Aceso's own implementation of the seam.
// ---------------------------------------------------------------------------

/// [`FtEngine`] implementation for Aceso's hybrid checkpoint+erasure
/// scheme — a thin adapter over [`AcesoStore`].
pub struct AcesoEngine {
    store: Arc<AcesoStore>,
    tuning: Option<ClientTuning>,
}

impl AcesoEngine {
    /// Launches a store with `cfg` and wraps it in the engine seam.
    pub fn launch(cfg: AcesoConfig) -> FtResult<Self> {
        let store = AcesoStore::launch(cfg).map_err(FtError::from)?;
        Ok(AcesoEngine {
            store,
            tuning: None,
        })
    }

    /// Wraps an already-launched store.
    pub fn new(store: Arc<AcesoStore>) -> Self {
        AcesoEngine {
            store,
            tuning: None,
        }
    }

    /// Wraps a store and mints every client with `tuning` (fault harnesses
    /// use fail-fast retry budgets so a blocked op costs milliseconds).
    pub fn with_tuning(store: Arc<AcesoStore>, tuning: ClientTuning) -> Self {
        AcesoEngine {
            store,
            tuning: Some(tuning),
        }
    }

    /// The wrapped store, for Aceso-specific surfaces the seam omits.
    pub fn store(&self) -> &Arc<AcesoStore> {
        &self.store
    }
}

/// [`FtClient`] adapter over [`AcesoClient`].
struct AcesoFtClient {
    inner: AcesoClient,
}

impl FtClient for AcesoFtClient {
    fn insert(&mut self, key: &[u8], value: &[u8]) -> FtResult<()> {
        self.inner.insert(key, value).map_err(FtError::from)
    }

    fn update(&mut self, key: &[u8], value: &[u8]) -> FtResult<()> {
        self.inner.update(key, value).map_err(FtError::from)
    }

    fn search(&mut self, key: &[u8]) -> FtResult<Option<Vec<u8>>> {
        self.inner.search(key).map_err(FtError::from)
    }

    fn delete(&mut self, key: &[u8]) -> FtResult<bool> {
        self.inner.delete(key).map_err(FtError::from)
    }

    fn id(&self) -> u32 {
        self.inner.id()
    }

    fn quiesce(&mut self) -> FtResult<()> {
        self.inner.flush_bitmaps().map_err(FtError::from)
    }

    fn install_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.inner.dm.install_fault_plan(plan);
    }

    fn take_ops(&mut self) -> OpStats {
        self.inner.dm.take_ops()
    }

    fn reset_stats(&mut self) {
        self.inner.dm.reset_stats();
    }
}

impl FtEngine for AcesoEngine {
    fn kind(&self) -> &'static str {
        "aceso"
    }

    fn client(&self) -> FtResult<Box<dyn FtClient>> {
        let inner = match self.tuning {
            Some(t) => self.store.client_with(t),
            None => self.store.client(),
        }
        .map_err(FtError::from)?;
        Ok(Box::new(AcesoFtClient { inner }))
    }

    fn columns(&self) -> usize {
        self.store.cfg.num_mns
    }

    fn node_of(&self, col: usize) -> NodeId {
        self.store.directory().node_of(col)
    }

    fn kill_column(&self, col: usize) -> bool {
        self.store.kill_mn(col)
    }

    fn recover_column(&self, col: usize) -> FtResult<RecoverySummary> {
        let r = crate::recovery::recover_mn(&self.store, col).map_err(FtError::from)?;
        Ok(RecoverySummary {
            net_ms: r.index_tier_net_ms() + r.old_lblock_net_ms + r.parity_net_ms,
            bytes: r.meta_bytes
                + r.ckpt_bytes
                + r.lblock_net_bytes
                + r.rblock_net_bytes
                + r.parity_net_bytes,
            kvs: r.kv_count,
        })
    }

    fn recover_client(&self, id: u32) -> FtResult<()> {
        let mut revived = self.store.client_with_id(id);
        recover_cn(&self.store, &mut revived).map_err(FtError::from)?;
        Ok(())
    }

    fn check(&self) -> FtResult<Vec<String>> {
        let report = crate::scrub::scrub(&self.store).map_err(FtError::from)?;
        if report.is_clean() {
            Ok(Vec::new())
        } else {
            Ok(vec![format!("scrub dirty: {report:?}")])
        }
    }

    fn tick(&self) -> FtResult<()> {
        self.store.checkpoint_tick().map_err(FtError::from)?;
        Ok(())
    }

    fn space(&self) -> SpaceReport {
        let u = self.store.memory_usage();
        SpaceReport {
            valid: u.valid,
            redundancy: u.redundancy,
            delta: u.delta,
            allocated: u.data_allocated,
        }
    }

    fn cluster(&self) -> &Arc<Cluster> {
        &self.store.cluster
    }

    fn shutdown(&self) {
        self.store.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> AcesoEngine {
        let cfg = AcesoConfig {
            index_groups: 128,
            ..AcesoConfig::small()
        };
        AcesoEngine::launch(cfg).unwrap()
    }

    #[test]
    fn trait_object_round_trip() {
        let engine = small_engine();
        let eng: &dyn FtEngine = &engine;
        assert_eq!(eng.kind(), "aceso");
        let mut c = eng.client().unwrap();
        c.insert(b"alpha", b"one").unwrap();
        assert_eq!(c.search(b"alpha").unwrap().as_deref(), Some(&b"one"[..]));
        assert!(c.delete(b"alpha").unwrap());
        assert_eq!(c.search(b"alpha").unwrap(), None);
        assert!(!c.delete(b"alpha").unwrap());
        assert_eq!(c.update(b"alpha", b"x").unwrap_err(), FtError::NotFound);
        eng.shutdown();
    }

    #[test]
    fn kill_and_recover_through_seam() {
        let engine = small_engine();
        let eng: &dyn FtEngine = &engine;
        let mut c = eng.client().unwrap();
        for i in 0..16 {
            let k = format!("seam-{i:02}");
            c.insert(k.as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        c.quiesce().unwrap();
        eng.tick().unwrap();
        let col = eng.home_col(b"seam-03");
        assert!(eng.kill_column(col));
        assert!(!eng.kill_column(col), "second kill must report dead");
        let s = eng.recover_column(col).unwrap();
        assert!(s.bytes > 0 && s.net_ms > 0.0);
        for i in 0..16 {
            let k = format!("seam-{i:02}");
            assert_eq!(
                c.search(k.as_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes()),
                "{k} lost after recovery"
            );
        }
        assert!(eng.check().unwrap().is_empty());
        eng.shutdown();
    }

    #[test]
    fn space_report_shapes() {
        let engine = small_engine();
        let eng: &dyn FtEngine = &engine;
        let mut c = eng.client().unwrap();
        for i in 0..32 {
            c.insert(format!("sp-{i:03}").as_bytes(), &[7u8; 64]).unwrap();
        }
        c.quiesce().unwrap();
        let sp = eng.space();
        assert!(sp.valid > 0);
        assert!(sp.redundancy > 0, "X-Code parity must be accounted");
        assert!(sp.overhead_factor() > 1.0);
        assert_eq!(sp.total(), sp.valid + sp.redundancy + sp.delta);
        eng.shutdown();
    }

    #[test]
    fn error_classes_map() {
        assert_eq!(FtError::from(StoreError::NotFound), FtError::NotFound);
        assert!(matches!(
            FtError::from(StoreError::Shutdown),
            FtError::Crashed(_)
        ));
        assert!(matches!(
            FtError::from(StoreError::RetriesExhausted),
            FtError::Unreachable(_)
        ));
        assert!(matches!(
            FtError::from(StoreError::OutOfBlocks),
            FtError::Other(_)
        ));
    }
}
