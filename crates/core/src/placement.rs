//! Placement groups: epoch-versioned column→node resolution for elastic
//! membership (online MN add/drain with live re-encoding).
//!
//! A column's blocks are partitioned into **placement groups**
//! (`group = block_id % elastic_groups`). While a column migrates from one
//! memory node to another, the migrator moves one group at a time and
//! publishes a new [`PlacementSnapshot`] after every step; clients resolve
//! each block-area access through their snapshot and fall back to the
//! [`Directory`](crate::server::Directory) for everything that has not
//! moved (index/meta areas, unmoved groups, non-migrating columns).
//!
//! Safety comes from two mechanisms working together:
//!
//! - **Epoch fences** ([`aceso_rdma::MemoryNode::install_fence`]): before a
//!   group is copied, its byte ranges on the source node are fenced at the
//!   *next* placement epoch, so a client still holding the previous
//!   snapshot gets [`aceso_rdma::RdmaError::EpochFenced`] instead of
//!   silently writing bytes the copy will never see. The client refreshes
//!   its snapshot and retries.
//! - **Dual-write mirroring**: while the migration is in flight
//!   (`mirror = true`, i.e. until the final publish), refreshed clients
//!   write block-area bytes to *both* sides. The source therefore stays
//!   byte-fresh, which makes aborting a migration (target dies mid-copy)
//!   trivially safe, and keeps recovery paths that resolve through the
//!   directory correct before the publish.

use crate::config::MemoryMap;
use aceso_blockalloc::CellKind;
use aceso_rdma::NodeId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why a column is being migrated. Mechanically join and drain are the
/// same operation (move the column onto a fresh node, retire the old one);
/// the kind drives chaos targeting and reporting labels only.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElasticKind {
    /// Capacity add: a fresh node joins and takes over the column.
    Join,
    /// Planned removal: the column is moved off a node being drained.
    Drain,
}

impl core::fmt::Display for ElasticKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ElasticKind::Join => write!(f, "join"),
            ElasticKind::Drain => write!(f, "drain"),
        }
    }
}

/// The in-flight migration recorded in a [`PlacementSnapshot`].
#[derive(Clone, Debug)]
pub struct MigrationView {
    /// The column being migrated.
    pub col: usize,
    /// The node the column is moving off.
    pub from: NodeId,
    /// The node the column is moving onto.
    pub to: NodeId,
    /// Number of placement groups (`group = block_id % groups`).
    pub groups: usize,
    /// Per-group flag: data/delta blocks of group `g` are served by `to`.
    pub moved: Vec<bool>,
    /// Parity cells are served by `to` (flipped by the re-encode step).
    pub parity_moved: bool,
    /// Dual-write window: block-area writes must land on both nodes.
    pub mirror: bool,
}

/// An immutable point-in-time view of placement. Cheap to clone via `Arc`;
/// clients hold one and refresh on [`aceso_rdma::RdmaError::EpochFenced`].
#[derive(Clone, Debug)]
pub struct PlacementSnapshot {
    /// Monotone placement epoch; bumped on every placement change.
    pub epoch: u64,
    /// The in-flight migration, if any.
    pub migration: Option<MigrationView>,
    /// Nodes retired by completed migrations. Cached physical addresses
    /// pointing here are stale even though the memory may still respond.
    pub retired: Vec<NodeId>,
    /// Per-column last-placement-change epoch: the epoch of the most
    /// recent mutation that touched the column's placement (begin, group
    /// move, re-encode, publish, abort). Clients compare this against the
    /// epoch a cache entry was filled under — an entry is stale as soon as
    /// its column changed placement after the fill, *even if no node has
    /// been retired yet* (a mid-migration column already serves some
    /// offsets from the target).
    pub col_epochs: BTreeMap<usize, u64>,
}

impl PlacementSnapshot {
    /// The epoch of the last placement change affecting `col` (0 when the
    /// column has never migrated — older than any real fill epoch).
    pub fn col_epoch(&self, col: usize) -> u64 {
        self.col_epochs.get(&col).copied().unwrap_or(0)
    }

    /// Node override for block-area offset `off` of column `col`, or `None`
    /// when the directory is authoritative (no migration on this column,
    /// index/meta areas, groups not yet moved).
    pub fn resolve(&self, col: usize, off: u64, map: &MemoryMap) -> Option<NodeId> {
        let m = self.migration.as_ref()?;
        if col != m.col {
            return None;
        }
        let (block, _) = map.blocks.locate(off)?;
        let moved = match map.blocks.kind_of(block) {
            CellKind::Parity { .. } => m.parity_moved,
            _ => m.moved[block as usize % m.groups],
        };
        moved.then_some(m.to)
    }

    /// Mirror target for a block-area *write* to `(col, off)`: while the
    /// dual-write window is open, the write must also land on the other
    /// side of the migration so neither copy goes stale.
    pub fn mirror(&self, col: usize, off: u64, map: &MemoryMap) -> Option<NodeId> {
        let m = self.migration.as_ref()?;
        if !m.mirror || col != m.col {
            return None;
        }
        map.blocks.locate(off)?;
        match self.resolve(col, off, map) {
            Some(_) => Some(m.from), // Primary is the target: mirror back.
            None => Some(m.to),      // Primary is the source: pre-fill the target.
        }
    }
}

/// The cluster-wide placement map. One per [`AcesoStore`](crate::AcesoStore);
/// the migrator mutates it, everyone else reads [`PlacementMap::snapshot`].
pub struct PlacementMap {
    snap: Mutex<Arc<PlacementSnapshot>>,
}

impl PlacementMap {
    /// Creates a placement map seeded at `epoch` (the launch-time
    /// membership view epoch, so placement epochs extend the existing
    /// membership-epoch sequence).
    pub fn new(epoch: u64) -> Self {
        PlacementMap {
            snap: Mutex::new(Arc::new(PlacementSnapshot {
                epoch,
                migration: None,
                retired: Vec::new(),
                col_epochs: BTreeMap::new(),
            })),
        }
    }

    /// The current snapshot (cheap `Arc` clone).
    pub fn snapshot(&self) -> Arc<PlacementSnapshot> {
        Arc::clone(&self.snap.lock())
    }

    /// The current placement epoch.
    pub fn epoch(&self) -> u64 {
        self.snap.lock().epoch
    }

    /// The epoch the *next* mutation will publish. The migrator installs
    /// fences at this value before performing the step, so no snapshot a
    /// client could currently hold passes them.
    pub fn next_epoch(&self) -> u64 {
        self.snap.lock().epoch + 1
    }

    fn publish(&self, f: impl FnOnce(&mut PlacementSnapshot)) -> u64 {
        let mut g = self.snap.lock();
        let mut next = (**g).clone();
        next.epoch += 1;
        f(&mut next);
        let epoch = next.epoch;
        *g = Arc::new(next);
        epoch
    }

    /// Stamps `col`'s last-placement-change epoch inside a `publish`
    /// closure (the closure already sees the incremented epoch).
    fn stamp(s: &mut PlacementSnapshot, col: usize) {
        let e = s.epoch;
        s.col_epochs.insert(col, e);
    }

    /// Starts a migration of `col` from `from` to `to` with `groups`
    /// placement groups. Returns the published epoch.
    pub(crate) fn begin(&self, col: usize, from: NodeId, to: NodeId, groups: usize) -> u64 {
        self.publish(|s| {
            s.migration = Some(MigrationView {
                col,
                from,
                to,
                groups,
                moved: vec![false; groups],
                parity_moved: false,
                mirror: true,
            });
            Self::stamp(s, col);
        })
    }

    /// Marks group `g` as moved. Returns the published epoch.
    pub(crate) fn mark_moved(&self, g: usize) -> u64 {
        self.publish(|s| {
            if let Some(m) = s.migration.as_mut() {
                m.moved[g] = true;
                let col = m.col;
                Self::stamp(s, col);
            }
        })
    }

    /// Marks the parity cells as moved (re-encode step done).
    pub(crate) fn mark_parity_moved(&self) -> u64 {
        self.publish(|s| {
            if let Some(m) = s.migration.as_mut() {
                m.parity_moved = true;
                let col = m.col;
                Self::stamp(s, col);
            }
        })
    }

    /// Completes the migration: clears it and retires the source node.
    pub(crate) fn finish(&self) -> u64 {
        self.publish(|s| {
            if let Some(m) = s.migration.take() {
                s.retired.push(m.from);
                Self::stamp(s, m.col);
            }
        })
    }

    /// Aborts the migration: the directory-resolved source (kept fresh by
    /// the dual-write mirror) is authoritative again.
    pub(crate) fn abort(&self) -> u64 {
        self.publish(|s| {
            if let Some(m) = s.migration.take() {
                Self::stamp(s, m.col);
            }
        })
    }

    /// Bumps the epoch without changing placement (membership-only events
    /// such as retiring the drained node).
    pub(crate) fn bump(&self) -> u64 {
        self.publish(|_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcesoConfig;

    fn map() -> MemoryMap {
        AcesoConfig::small().memory_map()
    }

    #[test]
    fn epochs_are_monotone_across_all_mutations() {
        let pm = PlacementMap::new(7);
        let mut last = pm.epoch();
        for e in [
            pm.begin(1, NodeId(1), NodeId(9), 4),
            pm.mark_moved(0),
            pm.mark_moved(3),
            pm.mark_parity_moved(),
            pm.finish(),
            pm.bump(),
        ] {
            assert!(e > last, "epoch must advance: {e} after {last}");
            last = e;
        }
        assert_eq!(pm.snapshot().retired, vec![NodeId(1)]);
        assert!(pm.snapshot().migration.is_none());
    }

    #[test]
    fn col_epochs_track_every_placement_mutation() {
        let pm = PlacementMap::new(3);
        // Never-migrated columns read as epoch 0 (older than any fill).
        assert_eq!(pm.snapshot().col_epoch(1), 0);

        let e_begin = pm.begin(1, NodeId(1), NodeId(9), 4);
        assert_eq!(pm.snapshot().col_epoch(1), e_begin);
        // Other columns stay untouched.
        assert_eq!(pm.snapshot().col_epoch(2), 0);

        let e_moved = pm.mark_moved(2);
        assert_eq!(pm.snapshot().col_epoch(1), e_moved);
        let e_parity = pm.mark_parity_moved();
        assert_eq!(pm.snapshot().col_epoch(1), e_parity);
        let e_finish = pm.finish();
        assert_eq!(pm.snapshot().col_epoch(1), e_finish);

        // A membership-only bump advances the epoch but stamps no column.
        let e_bump = pm.bump();
        assert!(e_bump > e_finish);
        assert_eq!(pm.snapshot().col_epoch(1), e_finish);

        // Abort stamps the column too: clients may have cached through the
        // migration view and must re-resolve against the directory.
        let e2 = pm.begin(2, NodeId(2), NodeId(8), 4);
        assert_eq!(pm.snapshot().col_epoch(2), e2);
        let e_abort = pm.abort();
        assert_eq!(pm.snapshot().col_epoch(2), e_abort);
    }

    #[test]
    fn resolve_follows_group_and_parity_flips() {
        let m = map();
        let pm = PlacementMap::new(0);
        pm.begin(2, NodeId(2), NodeId(8), 4);
        let bs = m.blocks.block_size;
        let data_off = |id: u32| m.blocks.block_offset(id);

        // Nothing moved yet: directory is authoritative everywhere.
        let s = pm.snapshot();
        assert_eq!(s.resolve(2, data_off(0), &m), None);
        // Index/meta areas never resolve through placement.
        assert_eq!(s.resolve(2, 0, &m), None);
        assert_eq!(s.resolve(2, m.blocks.meta_base, &m), None);

        // Move group 1: block ids ≡ 1 (mod 4) flip, others do not.
        pm.mark_moved(1);
        let s = pm.snapshot();
        assert_eq!(s.resolve(2, data_off(1), &m), Some(NodeId(8)));
        assert_eq!(s.resolve(2, data_off(1) + bs - 1, &m), Some(NodeId(8)));
        assert_eq!(s.resolve(2, data_off(2), &m), None);
        // Other columns are untouched.
        assert_eq!(s.resolve(3, data_off(1), &m), None);

        // Parity cells follow the dedicated flip, not their group.
        let n = m.blocks.n;
        let pid = m.blocks.cell_block_id(0, n - 2);
        pm.mark_moved(pid as usize % 4); // Would cover pid's group...
        assert_eq!(pm.snapshot().resolve(2, data_off(pid), &m), None);
        pm.mark_parity_moved();
        assert_eq!(pm.snapshot().resolve(2, data_off(pid), &m), Some(NodeId(8)));
    }

    #[test]
    fn mirror_targets_the_other_side_until_publish() {
        let m = map();
        let pm = PlacementMap::new(0);
        pm.begin(0, NodeId(0), NodeId(5), 2);
        let off = m.blocks.block_offset(2); // group 0
        let s = pm.snapshot();
        // Unmoved group: primary is the source, pre-fill the target.
        assert_eq!(s.mirror(0, off, &m), Some(NodeId(5)));
        pm.mark_moved(0);
        let s = pm.snapshot();
        // Moved group: primary is the target, mirror back to the source.
        assert_eq!(s.mirror(0, off, &m), Some(NodeId(0)));
        // Index area and other columns never mirror.
        assert_eq!(s.mirror(0, 0, &m), None);
        assert_eq!(s.mirror(1, off, &m), None);
        // The window closes at publish.
        pm.finish();
        assert_eq!(pm.snapshot().mirror(0, off, &m), None);
    }
}
