//! Parity scrubbing: verify the erasure-coding invariants of every stripe.
//!
//! Production stores scrub their redundancy in the background to catch
//! silent corruption before a failure forces a decode. This scrubber
//! checks, for every stripe array of the coding group:
//!
//! 1. **Parity equations** — each PARITY cell equals the XOR of the
//!    *encoded view* of the data cells its equation covers, where the
//!    encoded view of a cell with a pending delta is `content ⊕ delta`
//!    and of an unencoded cell is zero (§3.3.2's bookkeeping).
//! 2. **Delta-copy agreement** — the two delta copies of every unfilled
//!    DATA cell hold identical bytes (clients write both in one doorbell
//!    batch; divergence means a torn write CN recovery has not yet
//!    repaired).
//!
//! The same checker doubles as a test oracle: integration tests scrub
//! after every workload and recovery to prove decodability without
//! actually failing a node.

use crate::config::unpack_col;
use crate::proto::{ServerReq, ServerResp};
use crate::store::AcesoStore;
use crate::Result;
use aceso_blockalloc::{BlockRecord, Role};
use aceso_erasure::{xor_into, XCode};
use aceso_rdma::GlobalAddr;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Outcome of one scrub pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Stripe arrays examined.
    pub arrays_checked: usize,
    /// Parity cells whose equation held.
    pub parity_ok: usize,
    /// Parity cells whose equation failed — decode would corrupt data.
    pub parity_mismatch: usize,
    /// Data cells whose two delta copies disagree.
    pub delta_copy_mismatch: usize,
    /// Human-readable location of each mismatch (chaos counterexamples).
    pub mismatches: Vec<String>,
}

impl ScrubReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.parity_mismatch == 0 && self.delta_copy_mismatch == 0
    }
}

/// Scrubs every allocated stripe of the coding group.
///
/// Quiesce writers first (or accept false positives from in-flight
/// writes): the scrubber reads cells one block at a time, so a concurrent
/// overwrite can straddle the reads.
pub fn scrub(store: &Arc<AcesoStore>) -> Result<ScrubReport> {
    let map = store.map;
    let n = store.cfg.num_mns;
    let bs = map.blocks.block_size as usize;
    let dir = store.directory();
    let dm = store.cluster.background_client();
    let xcode = XCode::new(n).expect("prime n");
    let mut report = ScrubReport::default();

    // Collect parity records and the set of arrays in use.
    let mut arrays: BTreeSet<u64> = BTreeSet::new();
    let mut parity_recs: HashMap<(u64, usize, usize), BlockRecord> = HashMap::new();
    for c in 0..n {
        let resp = dm.rpc(
            dir.node_of(c),
            &dir.rpc_of(c),
            ServerReq::ListDataBlocks,
            16,
        )?;
        if let ServerResp::Records { list } = resp {
            for (_, bytes) in list {
                let rec = BlockRecord::decode(&bytes, bs as u64);
                arrays.insert(rec.stripe_array);
            }
        }
        for &array in &arrays {
            for prow in [n - 2, n - 1] {
                let pid = map.blocks.cell_block_id(array, prow);
                if let Ok(ServerResp::Record { bytes }) = dm.rpc(
                    dir.node_of(c),
                    &dir.rpc_of(c),
                    ServerReq::GetRecord { block: pid },
                    16,
                ) {
                    let rec = BlockRecord::decode(&bytes, bs as u64);
                    if rec.role == Role::Parity {
                        parity_recs.insert((array, c, prow), rec);
                    }
                }
            }
        }
    }

    let read_block = |col: usize, off: u64| -> Result<Vec<u8>> {
        Ok(dm.read_vec(GlobalAddr::new(dir.node_of(col), off), bs)?)
    };

    for &array in &arrays {
        report.arrays_checked += 1;
        // Delta-copy agreement per data cell.
        for r in 0..n - 2 {
            for c in 0..n {
                let ((drow, dcol), (arow, acol)) = xcode.parity_cells_for(r, c);
                let d1 = parity_recs
                    .get(&(array, dcol, drow))
                    .map(|p| p.delta_addr[r])
                    .unwrap_or(0);
                let d2 = parity_recs
                    .get(&(array, acol, arow))
                    .map(|p| p.delta_addr[r])
                    .unwrap_or(0);
                if d1 != 0 && d2 != 0 {
                    let (c1, o1) = unpack_col(d1);
                    let (c2, o2) = unpack_col(d2);
                    let b1 = read_block(c1, o1)?;
                    let b2 = read_block(c2, o2)?;
                    if b1 != b2 {
                        report.delta_copy_mismatch += 1;
                        let diff = b1.iter().zip(&b2).filter(|(a, b)| a != b).count();
                        report.mismatches.push(format!(
                            "delta copies of cell (array {array}, r {r}, c {c}) \
                             disagree: col {c1}@{o1:#x} vs col {c2}@{o2:#x}, \
                             {diff} bytes differ"
                        ));
                    }
                }
            }
        }
        // Parity equations.
        for eq in xcode.equations() {
            let Some(prec) = parity_recs.get(&(array, eq.parity_col, eq.parity_row)) else {
                continue; // Parity never allocated: nothing encoded yet.
            };
            let pid = map.blocks.cell_block_id(array, eq.parity_row);
            let actual = read_block(eq.parity_col, map.blocks.block_offset(pid))?;
            let mut expect = vec![0u8; bs];
            for &(r, c) in &eq.data {
                if prec.xor_map & (1 << r) == 0 {
                    continue; // Unencoded: contributes zero.
                }
                let did = map.blocks.cell_block_id(array, r);
                let mut cell = read_block(c, map.blocks.block_offset(did))?;
                if prec.delta_addr[r] != 0 {
                    let (dc, doff) = unpack_col(prec.delta_addr[r]);
                    let delta = read_block(dc, doff)?;
                    xor_into(&mut cell, &delta);
                }
                xor_into(&mut expect, &cell);
            }
            if expect == actual {
                report.parity_ok += 1;
            } else {
                report.parity_mismatch += 1;
                let diff = expect.iter().zip(&actual).filter(|(a, b)| a != b).count();
                report.mismatches.push(format!(
                    "parity equation (array {array}, prow {}, pcol {}) fails: \
                     {diff} bytes differ",
                    eq.parity_row, eq.parity_col
                ));
            }
        }
    }
    let obs = store.obs();
    if obs.is_enabled() {
        obs.add("scrub.runs", 1);
        obs.add("scrub.arrays", report.arrays_checked as u64);
        obs.add("scrub.parity_ok", report.parity_ok as u64);
        obs.add(
            "scrub.mismatches",
            (report.parity_mismatch + report.delta_copy_mismatch) as u64,
        );
    }
    Ok(report)
}
