//! Store configuration and the per-MN memory map (paper Figure 2).
//!
//! Every MN's region is carved identically:
//!
//! ```text
//! 0              ┌──────────────┐
//!                │ Index Area   │  RACE-style buckets + Index Version
//! meta_base      ├──────────────┤
//!                │ Meta Area    │  one BlockRecord per block
//! block_base     ├──────────────┤
//!                │ Block Area   │  stripe cells (DATA+PARITY) + DELTA pool
//!                └──────────────┘
//! ```

use aceso_blockalloc::BlockLayout;
use aceso_index::IndexLayout;
use aceso_rdma::CostModel;

/// Top-level configuration of an Aceso deployment (one coding group).
#[derive(Clone, Debug)]
pub struct AcesoConfig {
    /// Coding group size = number of MNs = X-Code `n`. Must be prime ≥ 3.
    pub num_mns: usize,
    /// Memory block size in bytes (paper default 2 MB; swept in Figure 20).
    pub block_size: u64,
    /// Stripe arrays per coding group (each contributes `n−2` DATA blocks
    /// and 2 PARITY blocks per MN).
    pub num_arrays: u64,
    /// DELTA pool blocks per MN.
    pub num_delta: u64,
    /// Index bucket groups per MN (24 usable slots each).
    pub index_groups: u64,
    /// Obsolete-KV ratio that makes a DATA block a reclamation candidate.
    pub reclaim_obsolete_ratio: f64,
    /// Free-block ratio *below* which reclamation actually triggers.
    pub reclaim_free_ratio: f64,
    /// How many obsolete marks a client buffers before a bitmap flush RPC.
    pub bitmap_flush_every: usize,
    /// Checkpoint interval in milliseconds when background checkpointing is
    /// enabled; benches usually drive rounds manually for determinism.
    pub ckpt_interval_ms: u64,
    /// Spawn the background checkpoint loop on launch.
    pub auto_checkpoint: bool,
    /// Placement groups per column for elastic migration: the migrator
    /// moves `block_id % elastic_groups` cohorts one at a time, bounding
    /// how much data each rebalance batch copies while client traffic
    /// continues against the rest.
    pub elastic_groups: usize,
    /// Parallel recovery workers for stripe reconstruction. The paper
    /// leaves "distributing coding stripe recovery tasks across multiple
    /// CNs, similar to RAMCloud" as future work (§4.5); this implements
    /// it: stripe arrays are sharded across workers, each with its own
    /// fabric endpoint, and the modeled transfer time divides by the
    /// effective fan-in (capped at the `n−1` source NICs).
    pub recovery_workers: usize,
    /// NIC cost model for performance reports.
    pub cost: CostModel,
}

impl AcesoConfig {
    /// A laptop-scale configuration for tests and examples: 5 MNs, 64 KB
    /// blocks, a few MB per MN.
    pub fn small() -> Self {
        AcesoConfig {
            num_mns: 5,
            block_size: 64 << 10,
            num_arrays: 8,
            num_delta: 24,
            index_groups: 512,
            reclaim_obsolete_ratio: 0.75,
            reclaim_free_ratio: 0.25,
            bitmap_flush_every: 64,
            ckpt_interval_ms: 500,
            auto_checkpoint: false,
            elastic_groups: 4,
            recovery_workers: 1,
            cost: CostModel::default(),
        }
    }

    /// A benchmark-scale configuration (more arrays, 2 MB paper blocks are
    /// still too large for quick CI — benches override as needed).
    pub fn bench() -> Self {
        AcesoConfig {
            num_arrays: 32,
            num_delta: 64,
            index_groups: 8192,
            ..AcesoConfig::small()
        }
    }

    /// Validates invariants and derives the memory map.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (non-prime group size, unaligned block
    /// size) — configurations are static programmer input.
    pub fn memory_map(&self) -> MemoryMap {
        assert!(
            self.block_size.is_multiple_of(64),
            "block size must be 64 B aligned"
        );
        assert!(
            aceso_erasure::XCode::new(self.num_mns).is_ok(),
            "num_mns must be a prime ≥ 3 (X-Code geometry)"
        );
        let index = IndexLayout::new(0, self.index_groups);
        let meta_base = index.size_bytes().next_multiple_of(64);
        let block_layout_probe = BlockLayout {
            n: self.num_mns,
            block_size: self.block_size,
            num_arrays: self.num_arrays,
            num_delta: self.num_delta,
            meta_base,
            block_base: 0, // Fixed up below.
        };
        let block_base =
            (meta_base + block_layout_probe.meta_size()).next_multiple_of(self.block_size.max(64));
        let blocks = BlockLayout {
            block_base,
            ..block_layout_probe
        };
        let region_len = block_base + blocks.block_area_size();
        MemoryMap {
            index,
            blocks,
            region_len: region_len as usize,
        }
    }
}

/// The derived per-MN memory map.
#[derive(Clone, Copy, Debug)]
pub struct MemoryMap {
    /// Index Area geometry (base 0).
    pub index: IndexLayout,
    /// Meta + Block area geometry.
    pub blocks: BlockLayout,
    /// Total region bytes per MN.
    pub region_len: usize,
}

/// Packs a `(column, offset)` pair into the 48-bit slot-address format.
///
/// Aceso stores *columns* (coding-group positions), not physical node ids,
/// in index slots and metadata records: when a crashed MN is replaced, the
/// replacement assumes the failed column, so every stored address stays
/// valid across recovery. Translation to the current physical node happens
/// at verb-issue time via the store's group map.
pub fn pack_col(col: usize, offset: u64) -> u64 {
    aceso_rdma::GlobalAddr::new(aceso_rdma::NodeId(col as u16), offset).pack48()
}

/// Unpacks a 48-bit slot address into `(column, offset)`.
pub fn unpack_col(packed: u64) -> (usize, u64) {
    let a = aceso_rdma::GlobalAddr::unpack48(packed);
    (a.node.0 as usize, a.offset)
}

/// Per-client feature switches, used by the factor analysis (Figure 13).
#[derive(Clone, Copy, Debug)]
pub struct ClientTuning {
    /// Keep a local index cache at all.
    pub use_cache: bool,
    /// Cache the slot *address* in addition to its value, enabling the
    /// validate-by-reread fast path (§3.5.1, the `+CACHE` step).
    pub cache_slot_addr: bool,
    /// Bound on the per-client index cache (entries). Eviction is CLOCK /
    /// second-chance over a deterministic BTreeMap (see
    /// [`crate::cache::IndexCache`]); 0 disables caching even when
    /// `use_cache` is set.
    pub cache_capacity: usize,
    /// Commit retry budget before reporting `RetriesExhausted`.
    pub max_retries: usize,
    /// How long (ms) index reads wait for a crashed column's replacement
    /// before surfacing the error. Chaos harnesses shrink this so blocked
    /// clients fail fast instead of stalling a whole matrix cell.
    pub index_wait_ms: u64,
}

impl Default for ClientTuning {
    fn default() -> Self {
        ClientTuning {
            use_cache: true,
            cache_slot_addr: true,
            cache_capacity: 4096,
            max_retries: 10_000,
            index_wait_ms: 10_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_map_is_consistent() {
        let map = AcesoConfig::small().memory_map();
        // Areas are ordered and non-overlapping.
        assert!(map.index.size_bytes() <= map.blocks.meta_base);
        assert!(map.blocks.meta_base + map.blocks.meta_size() <= map.blocks.block_base);
        assert_eq!(
            map.region_len as u64,
            map.blocks.block_base + map.blocks.block_area_size()
        );
        // Block base is block-aligned so cell offsets stay 64 B aligned.
        assert_eq!(map.blocks.block_base % 64, 0);
    }

    #[test]
    #[should_panic]
    fn non_prime_group_rejected() {
        AcesoConfig {
            num_mns: 4,
            ..AcesoConfig::small()
        }
        .memory_map();
    }

    #[test]
    fn region_fits_everything() {
        let cfg = AcesoConfig::small();
        let map = cfg.memory_map();
        let blocks = map.blocks.blocks_per_node();
        assert_eq!(blocks, cfg.num_arrays * 5 + cfg.num_delta);
        let last_block_end = map.blocks.block_offset((blocks - 1) as u32) + cfg.block_size;
        assert_eq!(last_block_end as usize, map.region_len);
    }
}
