//! Failure handling: tiered MN recovery, CN crash recovery, mixed crashes
//! (paper §3.4).
//!
//! MN recovery restores areas in criticality order — Meta, then Index, then
//! Block — publishing the replacement to clients as soon as the Index tier
//! completes, which is when write requests regain full performance and
//! reads continue degraded (§3.4.1). Stage timing combines *modeled*
//! network transfer (the simulated NIC's bandwidth over the bytes actually
//! moved) with *measured* compute (XOR decode, KV scanning), and the report
//! mirrors the columns of the paper's Table 2.

use crate::config::{pack_col, unpack_col};
use crate::kv;
use crate::proto::{ServerReq, ServerResp};
use crate::server::MnServer;
use crate::store::AcesoStore;
use crate::{Result, StoreError};
use aceso_blockalloc::{Allocator, BlockId, BlockRecord, CellKind, Role};
use aceso_erasure::xor_into;
use aceso_index::slot::slot_version;
use aceso_index::{fingerprint, route_hash, SlotAtomic, SlotMeta};
use aceso_rdma::{rpc_channel, DmClient, GlobalAddr};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Stage-by-stage MN recovery breakdown (paper Table 2).
///
/// Each stage's headline `*_ms` column mixes *measured* compute with
/// *modeled* network time and is therefore machine-dependent. The
/// `*_bytes`/`*_ops` counters and the `*_net_ms` columns depend only on
/// the bytes actually moved and the configured [`aceso_rdma::CostModel`],
/// so they are bit-reproducible run to run — `bench quick --json` reports
/// those.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Reading the Meta Area replica (ms).
    pub read_meta_ms: f64,
    /// Meta Area replica bytes transferred (deterministic).
    pub meta_bytes: u64,
    /// Modeled network share of [`read_meta_ms`](Self::read_meta_ms).
    pub meta_net_ms: f64,
    /// Reading the latest index checkpoint (ms).
    pub read_ckpt_ms: f64,
    /// Checkpoint bytes transferred (deterministic).
    pub ckpt_bytes: u64,
    /// Modeled network share of [`read_ckpt_ms`](Self::read_ckpt_ms).
    pub ckpt_net_ms: f64,
    /// Reconstructing *new* local blocks via erasure decoding (ms).
    pub recover_lblock_ms: f64,
    /// Number of new local blocks reconstructed.
    pub lblock_count: usize,
    /// Network bytes read while decoding new local blocks (deterministic).
    pub lblock_net_bytes: u64,
    /// Network read ops issued while decoding new local blocks.
    pub lblock_net_ops: u64,
    /// Modeled network share of [`recover_lblock_ms`](Self::recover_lblock_ms).
    pub lblock_net_ms: f64,
    /// Reading new remote blocks from alive MNs (ms).
    pub read_rblock_ms: f64,
    /// Number of new remote blocks read.
    pub rblock_count: usize,
    /// Bytes of new remote blocks read (deterministic).
    pub rblock_net_bytes: u64,
    /// Modeled network share of [`read_rblock_ms`](Self::read_rblock_ms).
    pub rblock_net_ms: f64,
    /// Scanning KV pairs of new blocks and reapplying slots (ms).
    pub scan_kv_ms: f64,
    /// KV pairs scanned.
    pub kv_count: usize,
    /// Bytes of block content scanned for KVs (deterministic).
    pub scan_bytes: u64,
    /// Reconstructing *old* local blocks (Block tier, ms).
    pub recover_old_lblock_ms: f64,
    /// Block-tier compute component (decode XOR; machine-dependent).
    pub old_lblock_cpu_ms: f64,
    /// Block-tier modeled network component (scales with recovery fan-in).
    pub old_lblock_net_ms: f64,
    /// Number of old local blocks reconstructed.
    pub old_lblock_count: usize,
    /// Background parity + delta reconstruction (ms, not part of Total).
    pub parity_ms: f64,
    /// Network bytes read by the parity rebuild (deterministic).
    pub parity_net_bytes: u64,
    /// Modeled network share of [`parity_ms`](Self::parity_ms).
    pub parity_net_ms: f64,
}

impl RecoveryReport {
    /// Time until the Index Area is usable again (functionality recovery).
    pub fn index_tier_ms(&self) -> f64 {
        self.read_meta_ms
            + self.read_ckpt_ms
            + self.recover_lblock_ms
            + self.read_rblock_ms
            + self.scan_kv_ms
    }

    /// The paper's Total Time column (through the Block tier).
    pub fn total_ms(&self) -> f64 {
        self.index_tier_ms() + self.recover_old_lblock_ms
    }

    /// Modeled network time through the Index tier — the deterministic,
    /// machine-independent analogue of [`index_tier_ms`](Self::index_tier_ms).
    pub fn index_tier_net_ms(&self) -> f64 {
        self.meta_net_ms + self.ckpt_net_ms + self.lblock_net_ms + self.rblock_net_ms
    }
}

/// CN crash recovery outcome (§3.4.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct CnRecoveryReport {
    /// Unfilled blocks re-examined.
    pub blocks_checked: usize,
    /// Slots found torn and rolled back.
    pub slots_repaired: usize,
    /// Slots found fully written and kept.
    pub slots_kept: usize,
}

struct ScannedBlock {
    col: usize,
    block: BlockId,
    bytes: Vec<u8>,
    slot_len64: u8,
}

/// Recovers the failed column `col` onto a fresh memory node, returning the
/// per-stage timing report. The replacement is published to clients as soon
/// as the Index tier completes.
pub fn recover_mn(store: &Arc<AcesoStore>, col: usize) -> Result<RecoveryReport> {
    recover_mn_with(store, col, true)
}

/// Like [`recover_mn`] but optionally stopping after the Index tier
/// (`block_tier = false`), leaving old blocks lost — the state in which the
/// paper measures degraded SEARCH (§4.4). Old blocks can be recovered later
/// by a second call with `block_tier = true`.
pub fn recover_mn_with(
    store: &Arc<AcesoStore>,
    col: usize,
    block_tier: bool,
) -> Result<RecoveryReport> {
    let cost = store.cfg.cost;
    let map = store.map;
    let n = store.cfg.num_mns;
    let bs = map.blocks.block_size;
    let dm = store.cluster.background_client();
    let dir = store.directory();
    let mut report = RecoveryReport::default();

    // Start the replacement node + server (unpublished yet).
    let node = store.cluster.add_node(map.region_len);
    let server = MnServer::new(
        col,
        Arc::clone(&node),
        map,
        store.cfg.reclaim_obsolete_ratio,
        store.cfg.reclaim_free_ratio,
    );

    let alive = |c: usize| store.cluster.node(dir.node_of(c)).is_ok();

    // ---- Tier 1: Meta Area --------------------------------------------
    // The Meta Area is replicated on the next two columns; use whichever
    // survives (two simultaneous failures leave at least one).
    let t = Instant::now();
    let records = fetch_meta_replica(store, &dm, col)?;
    let mut meta_bytes = 0usize;
    {
        let mut recs = server.records.lock();
        for (id, bytes) in &records {
            meta_bytes += bytes.len();
            node.region
                .write(map.blocks.record_offset(*id), bytes)
                .expect("meta restore");
            recs[*id as usize] = BlockRecord::decode(bytes, bs);
            // Block contents are not restored yet.
            if matches!(recs[*id as usize].role, Role::Data | Role::Parity) {
                recs[*id as usize].valid = false;
            }
        }
        let role_of = |id: BlockId| recs[id as usize].role as u8;
        *server.alloc.lock() = Allocator::rebuild(map.blocks, role_of);
    }
    report.meta_bytes = meta_bytes as u64;
    report.meta_net_ms = cost.transfer_secs(meta_bytes as u64) * 1e3;
    report.read_meta_ms = t.elapsed().as_secs_f64() * 1e3 + report.meta_net_ms;

    // ---- Tier 2: Index Area ---------------------------------------------
    // The checkpoint lives on the right neighbour only (paper Figure 3).
    // If that neighbour crashed too, fall back to an empty checkpoint with
    // Index Version 0 — every block then counts as "new" and the index is
    // rebuilt from a full scan (slower, still correct).
    let t = Instant::now();
    let ncol = (col + 1) % n;
    let ckpt_resp = if alive(ncol) {
        dm.rpc(
            dir.node_of(ncol),
            &dir.rpc_of(ncol),
            ServerReq::GetCheckpoint { of_column: col },
            32,
        )
        .ok()
    } else {
        None
    };
    let (ckpt, ckpt_iv) = match ckpt_resp {
        Some(ServerResp::Checkpoint {
            data,
            index_version,
        }) => (data, index_version),
        _ => (vec![0u8; (map.index.num_groups * 384) as usize], 0),
    };
    server.index.restore(&node.region, &ckpt);
    server
        .index
        .local_set_index_version(&node.region, ckpt_iv + 1);
    server.sender.lock().rebase(ckpt.clone());
    report.ckpt_bytes = ckpt.len() as u64;
    report.ckpt_net_ms = cost.transfer_secs(ckpt.len() as u64) * 1e3;
    report.read_ckpt_ms = t.elapsed().as_secs_f64() * 1e3 + report.ckpt_net_ms;

    // Classify data blocks everywhere: "new" = Index Version 0 or ≥ ckpt.
    let is_new = |iv: u64| iv == 0 || iv >= ckpt_iv;
    let mut remote_new: Vec<(usize, BlockId, BlockRecord)> = Vec::new();
    let mut dead_new: Vec<(usize, BlockId, BlockRecord)> = Vec::new();
    let mut local_new: Vec<(BlockId, BlockRecord)> = Vec::new();
    let mut local_old: Vec<(BlockId, BlockRecord)> = Vec::new();
    let mut arrays_in_use: BTreeSet<u64> = BTreeSet::new();
    for c in 0..n {
        if c == col {
            continue;
        }
        if alive(c) {
            let resp = dm.rpc(
                dir.node_of(c),
                &dir.rpc_of(c),
                ServerReq::ListDataBlocks,
                16,
            )?;
            let ServerResp::Records { list } = resp else {
                continue;
            };
            for (id, bytes) in list {
                let rec = BlockRecord::decode(&bytes, bs);
                arrays_in_use.insert(rec.stripe_array);
                if is_new(rec.index_version) {
                    remote_new.push((c, id, rec));
                }
            }
        } else {
            // A second failed column: its records come from its replica and
            // its new blocks must be reconstructed to be scanned.
            for (id, bytes) in fetch_meta_replica(store, &dm, c)? {
                let rec = BlockRecord::decode(&bytes, bs);
                if rec.role != Role::Data {
                    continue;
                }
                arrays_in_use.insert(rec.stripe_array);
                if is_new(rec.index_version) {
                    dead_new.push((c, id, rec));
                }
            }
        }
    }
    {
        let recs = server.records.lock();
        for (id, rec) in recs.iter().enumerate() {
            if rec.role == Role::Data {
                arrays_in_use.insert(rec.stripe_array);
                if is_new(rec.index_version) {
                    local_new.push((id as BlockId, rec.clone()));
                } else {
                    local_old.push((id as BlockId, rec.clone()));
                }
            }
        }
    }

    // Reconstruct new local blocks (stripe-at-a-time X-Code decode). Cells
    // of *other* dead columns recovered along the way are kept for the KV
    // scan below.
    let t = Instant::now();
    let mut new_arrays: BTreeSet<u64> = local_new.iter().map(|(_, r)| r.stripe_array).collect();
    new_arrays.extend(dead_new.iter().map(|(_, _, r)| r.stripe_array));
    let (net_bytes, net_ops, mut others) =
        reconstruct_arrays_parallel(store, &server, col, &new_arrays)?;
    report.lblock_count = local_new.len();
    report.lblock_net_bytes = net_bytes;
    report.lblock_net_ops = net_ops;
    report.lblock_net_ms = modeled_transfer_ms(store, net_bytes, net_ops);
    report.recover_lblock_ms = t.elapsed().as_secs_f64() * 1e3 + report.lblock_net_ms;

    // Read new remote blocks.
    let t = Instant::now();
    let mut scanned: Vec<ScannedBlock> = Vec::new();
    let mut rbytes = 0u64;
    for (c, id, rec) in &remote_new {
        let bytes = dm.read_vec(
            GlobalAddr::new(dir.node_of(*c), map.blocks.block_offset(*id)),
            bs as usize,
        )?;
        rbytes += bs;
        scanned.push(ScannedBlock {
            col: *c,
            block: *id,
            bytes,
            slot_len64: rec.slot_len64,
        });
    }
    report.rblock_count = remote_new.len();
    report.rblock_net_bytes = rbytes;
    report.rblock_net_ms =
        (rbytes as f64 / cost.node_bw + remote_new.len() as f64 * cost.rtt_us * 1e-6) * 1e3;
    report.read_rblock_ms = t.elapsed().as_secs_f64() * 1e3 + report.rblock_net_ms;

    // Include the reconstructed local new blocks in the scan set.
    for (id, rec) in &local_new {
        let bytes = node
            .region
            .read_vec(map.blocks.block_offset(*id), bs as usize)
            .expect("reconstructed block");
        scanned.push(ScannedBlock {
            col,
            block: *id,
            bytes,
            slot_len64: rec.slot_len64,
        });
    }
    // And the other dead columns' new blocks recovered during decoding.
    for (c, id, rec) in &dead_new {
        let CellKind::Data { array, row } = map.blocks.kind_of(*id) else {
            continue;
        };
        if let Some(bytes) = others.remove(&(array, row, *c)) {
            scanned.push(ScannedBlock {
                col: *c,
                block: *id,
                bytes,
                slot_len64: rec.slot_len64,
            });
        }
    }

    // Scan KV pairs and reapply the freshest ones to the restored index.
    let t = Instant::now();
    let (kv_count, deferred) = scan_and_reapply(store, &server, col, &scanned)?;
    report.kv_count = kv_count;
    report.scan_bytes = scanned.iter().map(|sb| sb.bytes.len() as u64).sum();
    report.scan_kv_ms = t.elapsed().as_secs_f64() * 1e3;

    // ---- Publish: functionality is back (degraded reads). --------------
    let (rpc_client, rpc_server) = rpc_channel();
    dir.replace(col, node.id, rpc_client);
    store.set_server(col, Arc::clone(&server));
    {
        let s = Arc::clone(&server);
        let d = Arc::clone(dir);
        let dm2 = store.cluster.background_client();
        store.spawn_thread(std::thread::spawn(move || s.run(rpc_server, dm2, d)));
    }
    // Our left neighbour replicates into us: ask it to resend everything.
    let lcol = (col + n - 1) % n;
    let _ = dm.rpc(
        dir.node_of(lcol),
        &dir.rpc_of(lcol),
        ServerReq::ResetReplication,
        16,
    );

    // The replacement now serves reads, but parity cells and delta copies
    // hosted on this column are still zeroed until the rebuild below runs.
    // Flag the window so CN recovery knows not to trust delta bytes here.
    store.degraded.lock().push(col);

    // ---- Tier 3: old local blocks. --------------------------------------
    if !block_tier {
        record_recovery_obs(&store.obs(), &report);
        return Ok(report);
    }
    let t = Instant::now();
    let old_arrays: BTreeSet<u64> = local_old
        .iter()
        .map(|(_, r)| r.stripe_array)
        .filter(|a| !new_arrays.contains(a))
        .collect();
    let (net_bytes, net_ops, _) = reconstruct_arrays_parallel(store, &server, col, &old_arrays)?;
    report.old_lblock_count = local_old.len();
    report.old_lblock_cpu_ms = t.elapsed().as_secs_f64() * 1e3;
    report.old_lblock_net_ms = modeled_transfer_ms(store, net_bytes, net_ops);
    report.recover_old_lblock_ms = report.old_lblock_cpu_ms + report.old_lblock_net_ms;

    // Resolve the fp-matches the index scan could not verify while old
    // block contents were missing. A checkpoint entry pointing into an
    // old block is unreadable during the Index tier, so a fresher scanned
    // KV for the same key was reapplied into a second slot; now that old
    // blocks are restored, confirm and clear the stale duplicate —
    // otherwise a search can probe it first and resurface the pre-crash
    // value of a key that was updated in the degraded window.
    for d in &deferred {
        let atomic = SlotAtomic::decode(node.region.load64(d.stale_off).expect("slot"));
        if atomic.is_empty() {
            continue;
        }
        let meta = SlotMeta::decode(node.region.load64(d.stale_off + 8).expect("slot"));
        if read_key_at(store, atomic.addr48, meta.len64).as_deref() == Some(d.key.as_slice())
            && slot_version(meta.epoch & !1, atomic.ver) < d.new_sv
        {
            node.region.store64(d.stale_off, 0).expect("slot clear");
            node.region.store64(d.stale_off + 8, 0).expect("slot clear");
        }
    }

    // ---- Background: parity cells + delta blocks of failed columns. -----
    // With multiple concurrent failures, parity needs peers' recovered
    // data, so the rebuild is deferred until the last column comes back.
    let t = Instant::now();
    store.pending_parity.lock().push(col);
    let all_alive = (0..n).all(alive);
    if all_alive {
        let cols: Vec<usize> = store.pending_parity.lock().drain(..).collect();
        let mut net_bytes = 0u64;
        for &pc in &cols {
            let srv = store.server(pc);
            for &array in &arrays_in_use {
                net_bytes += rebuild_parity_and_deltas(store, &srv, &dm, pc, array)?;
            }
        }
        report.parity_net_bytes = net_bytes;
        report.parity_net_ms = (net_bytes as f64 / cost.node_bw) * 1e3;
        report.parity_ms = t.elapsed().as_secs_f64() * 1e3 + report.parity_net_ms;
        // Exactly the columns whose parity and delta copies were rebuilt
        // above are whole again. Clearing the *whole* list here would also
        // drop columns degraded by someone else — an index-tier-only
        // recovery still waiting for its block tier, or an in-flight
        // elastic migration — and make recovery trust their delta bytes
        // too early.
        store.degraded.lock().retain(|c| !cols.contains(c));
    }

    record_recovery_obs(&store.obs(), &report);
    Ok(report)
}

/// Records a finished recovery's phase timings and counters into the
/// store's observability handle (no-op when no recorder is installed).
/// Span names follow the tier order: `recovery.meta.us`,
/// `recovery.index.us`, `recovery.block.us`, `recovery.parity.us`.
fn record_recovery_obs(obs: &aceso_obs::Obs, r: &RecoveryReport) {
    if !obs.is_enabled() {
        return;
    }
    obs.add("recovery.runs", 1);
    obs.add("recovery.kv_scanned", r.kv_count as u64);
    obs.add("recovery.lblocks", r.lblock_count as u64);
    obs.add("recovery.rblocks", r.rblock_count as u64);
    obs.add(
        "recovery.net_bytes",
        r.meta_bytes + r.ckpt_bytes + r.lblock_net_bytes + r.rblock_net_bytes + r.parity_net_bytes,
    );
    obs.observe("recovery.meta.us", r.read_meta_ms * 1e3);
    obs.observe(
        "recovery.index.us",
        (r.read_ckpt_ms + r.recover_lblock_ms + r.read_rblock_ms + r.scan_kv_ms) * 1e3,
    );
    obs.observe("recovery.block.us", r.recover_old_lblock_ms * 1e3);
    if r.parity_ms > 0.0 {
        obs.observe("recovery.parity.us", r.parity_ms * 1e3);
    }
}

/// Modeled network time for a recovery stage: bytes at line rate plus one
/// round trip per read, divided by the effective read fan-in when several
/// recovery workers pull stripes concurrently (RAMCloud-style distributed
/// recovery, the paper's §4.5 future work). The fan-in caps at the `n−1`
/// surviving source NICs.
fn modeled_transfer_ms(store: &Arc<AcesoStore>, net_bytes: u64, net_ops: u64) -> f64 {
    let cost = store.cfg.cost;
    let fan_in = store.cfg.recovery_workers.clamp(1, store.cfg.num_mns - 1) as f64;
    (net_bytes as f64 / cost.node_bw + net_ops as f64 * cost.rtt_us * 1e-6) / fan_in * 1e3
}

/// Shards stripe arrays across `recovery_workers` threads, each with its
/// own fabric endpoint, reconstructing the failed column's cells of every
/// array. Returns summed network demand and the recovered other-column
/// cell contents.
#[allow(clippy::type_complexity)]
fn reconstruct_arrays_parallel(
    store: &Arc<AcesoStore>,
    server: &Arc<MnServer>,
    col: usize,
    arrays: &BTreeSet<u64>,
) -> Result<(u64, u64, HashMap<(u64, usize, usize), Vec<u8>>)> {
    let workers = store.cfg.recovery_workers.max(1).min(arrays.len().max(1));
    let list: Vec<u64> = arrays.iter().copied().collect();
    let mut net_bytes = 0u64;
    let mut net_ops = 0u64;
    let mut others: HashMap<(u64, usize, usize), Vec<u8>> = HashMap::new();
    let results: Vec<Result<Vec<(u64, u64, u64, HashMap<(usize, usize), Vec<u8>>)>>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let shard: Vec<u64> = list.iter().copied().skip(w).step_by(workers).collect();
                    let store = Arc::clone(store);
                    let server = Arc::clone(server);
                    scope.spawn(move || {
                        let dm = store.cluster.background_client();
                        let mut out = Vec::with_capacity(shard.len());
                        for array in shard {
                            let (nb, no, o) =
                                reconstruct_failed_column(&store, &server, &dm, col, array, true)?;
                            out.push((array, nb, no, o));
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
    for r in results {
        for (array, nb, no, o) in r? {
            net_bytes += nb;
            net_ops += no;
            for ((row, c), bytes) in o {
                others.insert((array, row, c), bytes);
            }
        }
    }
    Ok((net_bytes, net_ops, others))
}

/// Fetches the failed column's Meta Area replica from whichever of its two
/// replica holders survives.
fn fetch_meta_replica(
    store: &Arc<AcesoStore>,
    dm: &DmClient,
    col: usize,
) -> Result<Vec<(BlockId, Vec<u8>)>> {
    let n = store.cfg.num_mns;
    let dir = store.directory();
    for ncol in [(col + 1) % n, (col + 2) % n] {
        if store.cluster.node(dir.node_of(ncol)).is_err() {
            continue;
        }
        match dm.rpc(
            dir.node_of(ncol),
            &dir.rpc_of(ncol),
            ServerReq::GetMetaReplica { of_column: col },
            32,
        ) {
            Ok(ServerResp::MetaReplica { records }) if !records.is_empty() => return Ok(records),
            Ok(ServerResp::MetaReplica { records }) => return Ok(records),
            _ => continue,
        }
    }
    Err(StoreError::NotFound)
}

/// Reconstructs every cell of `col` in stripe `array` onto the new node's
/// region via full-stripe X-Code decode (handles one or two failed
/// columns). Returns `(network bytes read, read ops, other-column
/// contents)`: the last element holds the *current* contents of data cells
/// recovered for other dead columns, keyed `(row, col)`, so the caller can
/// scan their KVs without a second decode.
#[allow(clippy::type_complexity)]
fn reconstruct_failed_column(
    store: &Arc<AcesoStore>,
    server: &Arc<MnServer>,
    dm: &DmClient,
    col: usize,
    array: u64,
    data_only: bool,
) -> Result<(u64, u64, HashMap<(usize, usize), Vec<u8>>)> {
    let map = store.map;
    let n = store.cfg.num_mns;
    let bs = map.blocks.block_size as usize;
    let dir = store.directory();
    let xcode = aceso_erasure::XCode::new(n).expect("prime n");

    // Gather parity records per column (xor_map + delta addrs).
    let mut parity_recs: HashMap<(usize, usize), BlockRecord> = HashMap::new();
    for c in 0..n {
        for prow in [n - 2, n - 1] {
            let pid = map.blocks.cell_block_id(array, prow);
            let rec = if c == col {
                server.records.lock()[pid as usize].clone()
            } else {
                match dm.rpc(
                    dir.node_of(c),
                    &dir.rpc_of(c),
                    ServerReq::GetRecord { block: pid },
                    16,
                ) {
                    Ok(ServerResp::Record { bytes }) => BlockRecord::decode(&bytes, bs as u64),
                    _ => BlockRecord::free(),
                }
            };
            parity_recs.insert((c, prow), rec);
        }
    }

    // Delta content per data cell (row, col), from any trustworthy copy.
    // A copy hosted on the column being recovered is lost by definition,
    // and one hosted on a column still in its degraded window reads back
    // as zeros (re-materialized only by the parity rebuild) — a read of
    // either would "succeed" with garbage once a replacement is serving.
    let degraded: Vec<usize> = store.degraded.lock().clone();
    let delta_of = |row: usize, c: usize| -> Option<Vec<u8>> {
        let (diag, anti) = xcode.parity_cells_for(row, c);
        for (prow, pcol) in [diag, anti] {
            let Some(prec) = parity_recs.get(&(pcol, prow)) else {
                continue;
            };
            let packed = prec.delta_addr[row];
            if packed == 0 {
                continue;
            }
            let (dcol, doff) = unpack_col(packed);
            if dcol == col || degraded.contains(&dcol) {
                continue;
            }
            if let Ok(bytes) = dm.read_vec(GlobalAddr::new(dir.node_of(dcol), doff), bs) {
                return Some(bytes);
            }
        }
        None
    };

    // Build the encoded-view stripe.
    let mut net_bytes = 0u64;
    let mut net_ops = 0u64;
    let mut stripe: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; n]; n];
    let mut deltas: HashMap<(usize, usize), Vec<u8>> = HashMap::new();
    for (r, stripe_row) in stripe.iter_mut().enumerate() {
        for (c, stripe_cell) in stripe_row.iter_mut().enumerate() {
            if c == col {
                continue; // The failed column: to be reconstructed.
            }
            let id = map.blocks.cell_block_id(array, r);
            let off = map.blocks.block_offset(id);
            let Ok(mut bytes) = dm.read_vec(GlobalAddr::new(dir.node_of(c), off), bs) else {
                continue; // Second failed column: leave as erased.
            };
            net_bytes += bs as u64;
            net_ops += 1;
            if r < n - 2 {
                // Encoded view of a data cell: C ⊕ pending delta. Unencoded
                // cells (xor_map bit clear) contribute zero to parity.
                let (diag, _) = xcode.parity_cells_for(r, c);
                let enc = parity_recs
                    .get(&(diag.1, diag.0))
                    .map(|p| p.xor_map & (1 << r) != 0)
                    .unwrap_or(false);
                if let Some(d) = delta_of(r, c) {
                    net_bytes += bs as u64;
                    net_ops += 1;
                    if enc {
                        xor_into(&mut bytes, &d);
                    } else {
                        bytes = vec![0u8; bs];
                    }
                    deltas.insert((r, c), d);
                } else if !enc {
                    bytes = vec![0u8; bs];
                }
            }
            *stripe_cell = Some(bytes);
        }
    }
    // Remember which cells were erased before decoding.
    let erased: Vec<(usize, usize)> = (0..n)
        .flat_map(|r| (0..n).map(move |c| (r, c)))
        .filter(|&(r, c)| stripe[r][c].is_none())
        .collect();
    xcode
        .reconstruct(&mut stripe)
        .map_err(|_| StoreError::NotFound)?;

    // Write the failed column's cells back: data cells get C = E ⊕ delta.
    let rows: Vec<usize> = if data_only {
        (0..n - 2).collect()
    } else {
        (0..n).collect()
    };
    for r in rows {
        let id = map.blocks.cell_block_id(array, r);
        {
            let recs = server.records.lock();
            let rec = &recs[id as usize];
            if rec.role == Role::Free {
                continue; // Never allocated: nothing to restore.
            }
        }
        let mut content = stripe[r][col].clone().expect("reconstructed");
        if r < n - 2 {
            if let Some(d) = delta_of(r, col) {
                net_bytes += bs as u64;
                net_ops += 1;
                xor_into(&mut content, &d);
            }
        }
        server
            .node
            .region
            .write(map.blocks.block_offset(id), &content)
            .expect("restore block");
        server.records.lock()[id as usize].valid = true;
    }

    // Current contents of data cells recovered for *other* dead columns.
    let mut others = HashMap::new();
    for (r, c) in erased {
        if c == col || r >= n - 2 {
            continue;
        }
        let mut content = stripe[r][c].clone().expect("reconstructed");
        if let Some(d) = delta_of(r, c) {
            xor_into(&mut content, &d);
        }
        others.insert((r, c), content);
    }
    Ok((net_bytes, net_ops, others))
}

/// Recomputes the failed column's PARITY cells and re-materializes its
/// DELTA blocks from the surviving copies. Returns network bytes read.
fn rebuild_parity_and_deltas(
    store: &Arc<AcesoStore>,
    server: &Arc<MnServer>,
    dm: &DmClient,
    col: usize,
    array: u64,
) -> Result<u64> {
    let map = store.map;
    let n = store.cfg.num_mns;
    let bs = map.blocks.block_size as usize;
    let dir = store.directory();
    let xcode = aceso_erasure::XCode::new(n).expect("prime n");
    let mut net = 0u64;

    for prow in [n - 2, n - 1] {
        let pid = map.blocks.cell_block_id(array, prow);
        let (xor_map, delta_addrs, allocated) = {
            let recs = server.records.lock();
            let rec = &recs[pid as usize];
            (rec.xor_map, rec.delta_addr, rec.role == Role::Parity)
        };
        if !allocated {
            continue;
        }
        let eq = xcode
            .equations()
            .into_iter()
            .find(|e| e.parity_row == prow && e.parity_col == col)
            .expect("own parity equation");
        let mut parity = vec![0u8; bs];
        for &(r, c) in &eq.data {
            // An unencoded cell (xor_map bit clear) contributes zero to the
            // parity equation, but its pending delta copy must still be
            // re-materialized below: for open cells the two delta replicas
            // ARE the redundancy, and leaving the lost copy stale would
            // silently drop to one replica until the block encodes.
            let encoded = xor_map & (1 << r) != 0;
            if encoded {
                // Encoded content of the covered cell: C ⊕ pending delta.
                let did = map.blocks.cell_block_id(array, r);
                let cbuf = dm.read_vec(
                    GlobalAddr::new(dir.node_of(c), map.blocks.block_offset(did)),
                    bs,
                )?;
                net += bs as u64;
                xor_into(&mut parity, &cbuf);
            }
            if delta_addrs[r] != 0 {
                // This cell has a pending delta whose copy on our column was
                // lost; fetch the surviving copy on the cell's other parity
                // column and re-materialize ours.
                let (odiag, oanti) = xcode.parity_cells_for(r, c);
                let other = if (odiag.1, odiag.0) == (col, prow) {
                    oanti
                } else {
                    odiag
                };
                let other_rec = match dm.rpc(
                    dir.node_of(other.1),
                    &dir.rpc_of(other.1),
                    ServerReq::GetRecord {
                        block: map.blocks.cell_block_id(array, other.0),
                    },
                    16,
                ) {
                    Ok(ServerResp::Record { bytes }) => BlockRecord::decode(&bytes, bs as u64),
                    _ => BlockRecord::free(),
                };
                if other_rec.delta_addr[r] != 0 {
                    let (dc, doff) = unpack_col(other_rec.delta_addr[r]);
                    let dbuf = dm.read_vec(GlobalAddr::new(dir.node_of(dc), doff), bs)?;
                    net += bs as u64;
                    if encoded {
                        xor_into(&mut parity, &dbuf);
                    }
                    // Re-materialize our local delta copy.
                    let (dcol_old, doff_old) = unpack_col(delta_addrs[r]);
                    debug_assert_eq!(dcol_old, col);
                    server
                        .node
                        .region
                        .write(doff_old, &dbuf)
                        .expect("delta restore");
                    let did_local = map.blocks.locate(doff_old).expect("delta offset").0;
                    server.records.lock()[did_local as usize].valid = true;
                }
            }
        }
        server
            .node
            .region
            .write(map.blocks.block_offset(pid), &parity)
            .expect("parity restore");
        server.records.lock()[pid as usize].valid = true;
    }
    Ok(net)
}

/// An fp-matching index slot the scan could not verify (its pointer
/// targets a block whose contents are not restored until the Block tier),
/// next to which a fresher scanned KV was reapplied. Once old blocks are
/// readable again the slot is re-checked: if it really is the same key,
/// the stale duplicate is cleared so searches cannot resurface the
/// pre-crash value.
struct UnverifiedDup {
    key: Vec<u8>,
    /// Region offset of the slot that could not be verified.
    stale_off: u64,
    /// Slot version of the freshly reapplied entry.
    new_sv: u64,
}

/// Scans new blocks and reapplies the freshest KV per slot to the restored
/// index of `col` (§3.2.2–§3.2.3). Returns the number of KVs scanned plus
/// the fp-matches that must be re-checked after the Block tier.
fn scan_and_reapply(
    store: &Arc<AcesoStore>,
    server: &Arc<MnServer>,
    col: usize,
    scanned: &[ScannedBlock],
) -> Result<(usize, Vec<UnverifiedDup>)> {
    let map = store.map;
    let n = store.cfg.num_mns as u64;
    let bs = map.blocks.block_size;
    let mut kv_count = 0usize;

    // Best recent KV per key, plus an addr→key side map for slot checks.
    struct Best {
        sv: u64,
        packed: u64,
        class: u8,
    }
    let mut best: BTreeMap<Vec<u8>, Best> = BTreeMap::new();
    let mut key_at: HashMap<u64, Vec<u8>> = HashMap::new();
    for sb in scanned {
        if sb.slot_len64 == 0 {
            continue;
        }
        let slot_bytes = sb.slot_len64 as usize * 64;
        let slots = (bs as usize) / slot_bytes;
        for s in 0..slots {
            let buf = &sb.bytes[s * slot_bytes..(s + 1) * slot_bytes];
            let Some(d) = kv::decode(buf) else { continue };
            kv_count += 1;
            if d.is_invalidated() {
                continue;
            }
            let off = map.blocks.block_offset(sb.block) + (s * slot_bytes) as u64;
            let packed = pack_col(sb.col, off);
            key_at.insert(packed, d.key.to_vec());
            if route_hash(d.key) % n != col as u64 {
                continue;
            }
            let e = best.entry(d.key.to_vec()).or_insert(Best {
                sv: 0,
                packed,
                class: sb.slot_len64,
            });
            if d.slot_version >= e.sv {
                e.sv = d.slot_version;
                e.packed = packed;
                e.class = sb.slot_len64;
            }
        }
    }

    // Reapply into the restored index (all local region writes).
    let region = &server.node.region;
    let layout = map.index;
    let mut dups: Vec<UnverifiedDup> = Vec::new();
    for (key, b) in best {
        let fp = fingerprint(&key);
        let mut applied = false;
        let mut first_empty: Option<u64> = None;
        let mut unverified: Option<u64> = None;
        'groups: for (g, c) in layout.buckets_for(&key) {
            for s in 0..aceso_index::layout::COMBINED_SLOTS {
                let off = layout.slot_offset(g, c, s);
                let atomic = SlotAtomic::decode(region.load64(off).expect("slot"));
                let meta = SlotMeta::decode(region.load64(off + 8).expect("slot"));
                if atomic.is_empty() {
                    first_empty.get_or_insert(off);
                    continue;
                }
                if atomic.fp != fp {
                    continue;
                }
                // Verify the slot is really this key's: prefer the scanned
                // side map, fall back to reading the pointed KV.
                let slot_key = key_at
                    .get(&atomic.addr48)
                    .cloned()
                    .or_else(|| read_key_at(store, atomic.addr48, meta.len64));
                let Some(slot_key) = slot_key else {
                    // Unreadable target (an old block not restored until
                    // the Block tier): re-check once contents are back.
                    unverified.get_or_insert(off);
                    continue;
                };
                if slot_key != key {
                    continue;
                }
                let current_sv = slot_version(meta.epoch & !1, atomic.ver);
                if b.sv > current_sv {
                    write_slot(region, off, fp, b.packed, b.sv, b.class);
                }
                applied = true;
                break 'groups;
            }
        }
        if !applied {
            if let Some(off) = first_empty {
                write_slot(region, off, fp, b.packed, b.sv, b.class);
                if let Some(stale_off) = unverified {
                    dups.push(UnverifiedDup {
                        key,
                        stale_off,
                        new_sv: b.sv,
                    });
                }
            }
        }
    }
    Ok((kv_count, dups))
}

fn write_slot(region: &aceso_rdma::Region, off: u64, fp: u8, packed: u64, sv: u64, class: u8) {
    let atomic = SlotAtomic {
        fp,
        addr48: packed,
        ver: (sv & 0xFF) as u8,
    };
    let meta = SlotMeta {
        len64: class,
        epoch: (sv >> 8) << 1,
    };
    region.store64(off, atomic.encode()).expect("slot write");
    region.store64(off + 8, meta.encode()).expect("slot write");
}

fn read_key_at(store: &Arc<AcesoStore>, packed: u64, len64: u8) -> Option<Vec<u8>> {
    let (c, off) = unpack_col(packed);
    let dm = store.ctl_dm();
    let len = (len64.max(4) as usize) * 64;
    let buf = dm
        .read_vec(GlobalAddr::new(store.directory().node_of(c), off), len)
        .ok()?;
    kv::decode(&buf).map(|d| d.key.to_vec())
}

/// Recovers a crashed client's unfilled blocks to a consistent state and
/// releases them (§3.4.2). Call on a fresh client created with
/// [`AcesoStore::client_with_id`] using the crashed client's id.
pub fn recover_cn(
    store: &Arc<AcesoStore>,
    client: &mut crate::AcesoClient,
) -> Result<CnRecoveryReport> {
    let map = store.map;
    let n = store.cfg.num_mns;
    let bs = map.blocks.block_size as usize;
    let dir = store.directory();
    let dm = store.cluster.background_client();
    let xcode = aceso_erasure::XCode::new(n).expect("prime n");
    let mut report = CnRecoveryReport::default();
    // Repair writes must land everywhere a client write would: the
    // placement primary plus the dual-write mirror while a migration is
    // in flight. Writing only the directory-resolved node would leave
    // already-copied groups on the migration target serving the
    // un-repaired bytes once the migration publishes.
    let pl = store.placement().snapshot();
    let write_repaired = |c: usize, off: u64, bytes: &[u8]| -> Result<()> {
        let primary = pl.resolve(c, off, &map).unwrap_or_else(|| dir.node_of(c));
        dm.write(GlobalAddr::new(primary, off), bytes)?;
        if let Some(m) = pl.mirror(c, off, &map) {
            let _ = dm.write(GlobalAddr::new(m, off), bytes);
        }
        Ok(())
    };

    for col in 0..n {
        let Ok(resp) = dm.rpc(
            dir.node_of(col),
            &dir.rpc_of(col),
            ServerReq::QueryClientBlocks {
                cli_id: client.id(),
            },
            16,
        ) else {
            continue; // Dead column: its blocks are handled by MN recovery.
        };
        let ServerResp::Records { list } = resp else {
            continue;
        };
        for (id, bytes) in list {
            let rec = BlockRecord::decode(&bytes, bs as u64);
            if rec.role != Role::Data || rec.slot_len64 == 0 {
                continue;
            }
            let CellKind::Data { array, row } = map.blocks.kind_of(id) else {
                continue;
            };
            report.blocks_checked += 1;
            let slot_bytes = rec.slot_len64 as usize * 64;
            let slots = bs / slot_bytes;
            let block_off = map.blocks.block_offset(id);
            let block = dm.read_vec(GlobalAddr::new(dir.node_of(col), block_off), bs)?;
            // Old contents: the server's backup for reused blocks, zeros
            // for fresh ones.
            let old = match dm.rpc(
                dir.node_of(col),
                &dir.rpc_of(col),
                ServerReq::GetOldCopy { block: id },
                16,
            )? {
                ServerResp::OldCopy { bytes: Some(b) } => b,
                _ => vec![0u8; bs],
            };
            // Fetch both delta blocks. Copies hosted on a column still in
            // its degraded window read back as zeros (the replacement
            // re-materializes them only in the parity rebuild); trusting
            // those bytes would classify every committed slot as torn and
            // the "repair" would zero the surviving copy too. Judge
            // consistency from trustworthy copies only. Exception: a
            // column degraded because it is mid-migration is byte-fresh
            // (the dual-write mirror keeps the source current), and its
            // copy must also take part in the repair — skipping it would
            // zero one copy of a torn delta but not the other.
            let mig_col = pl.migration.as_ref().map(|m| m.col);
            let degraded: Vec<usize> = store.degraded.lock().clone();
            let (diag, anti) = xcode.parity_cells_for(row, col);
            let mut dinfo: Vec<(usize, u64, Vec<u8>)> = Vec::new();
            let mut skipped_degraded = false;
            for (prow, pcol) in [diag, anti] {
                let pid = map.blocks.cell_block_id(array, prow);
                let Ok(ServerResp::Record { bytes }) = dm.rpc(
                    dir.node_of(pcol),
                    &dir.rpc_of(pcol),
                    ServerReq::GetRecord { block: pid },
                    16,
                ) else {
                    continue;
                };
                let prec = BlockRecord::decode(&bytes, bs as u64);
                if prec.delta_addr[row] == 0 {
                    continue;
                }
                let (dc, doff) = unpack_col(prec.delta_addr[row]);
                if degraded.contains(&dc) && Some(dc) != mig_col {
                    skipped_degraded = true;
                    continue;
                }
                if let Ok(dbuf) = dm.read_vec(GlobalAddr::new(dir.node_of(dc), doff), bs) {
                    dinfo.push((dc, doff, dbuf));
                }
            }
            if dinfo.is_empty() && skipped_degraded {
                // No trustworthy copy left to judge against: defer this
                // block to the column's block-tier recovery.
                continue;
            }

            for s in 0..slots {
                let range = s * slot_bytes..(s + 1) * slot_bytes;
                let kv_slot = &block[range.clone()];
                let old_slot = &old[range.clone()];
                if kv_slot == old_slot && dinfo.iter().all(|(_, _, d)| is_zero(&d[range.clone()])) {
                    continue; // Untouched slot.
                }
                // Expected delta for a fully-written slot: old ⊕ new.
                let mut expect = kv_slot.to_vec();
                xor_into(&mut expect, old_slot);
                let consistent = kv::is_complete(kv_slot)
                    && !dinfo.is_empty()
                    && dinfo.iter().all(|(_, _, d)| d[range.clone()] == expect[..]);
                if consistent {
                    report.slots_kept += 1;
                    continue;
                }
                // Torn: roll back to the old contents, zero the deltas.
                report.slots_repaired += 1;
                write_repaired(col, block_off + (s * slot_bytes) as u64, old_slot)?;
                let zeros = vec![0u8; slot_bytes];
                for (dc, doff, _) in &dinfo {
                    let _ = write_repaired(*dc, doff + (s * slot_bytes) as u64, &zeros);
                }
            }
        }
    }
    Ok(report)
}

fn is_zero(buf: &[u8]) -> bool {
    buf.iter().all(|&b| b == 0)
}

/// Mixed crashes (§3.4.3): restore client consistency on the surviving MNs
/// first, then recover the crashed MNs.
pub fn recover_mixed(
    store: &Arc<AcesoStore>,
    failed_cols: &[usize],
    crashed_clients: &mut [&mut crate::AcesoClient],
) -> Result<Vec<RecoveryReport>> {
    for client in crashed_clients.iter_mut() {
        recover_cn(store, client)?;
    }
    let mut reports = Vec::new();
    for &col in failed_cols {
        reports.push(recover_mn(store, col)?);
    }
    Ok(reports)
}
