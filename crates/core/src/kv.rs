//! On-block KV pair format.
//!
//! A DATA block of size class `c` is an array of `block_size / (64·c)`
//! slots. Each slot holds one KV pair:
//!
//! ```text
//! 0        Write Version (u8; 1 ⇄ 2 toggling per overwrite, 0 = never
//!          written) — §3.4.2
//! 1        flags (bit 0: tombstone — DELETE writes a zero-length value
//!          "used solely for logging", §4.2)
//! 2..4     key length (u16)
//! 4..8     value length (u32)
//! 8..16    Slot Version (u64; epoch≪8|ver, u64::MAX = invalidated after a
//!          lost commit race, Algorithm 1 line 18)
//! 16..     key bytes, then value bytes
//! last     Write Version trailer (must equal byte 0 once fully written)
//! ```
//!
//! The header/trailer pair detects torn writes after a client crash: RDMA
//! writes are delivered in order, so `header == trailer ≠ 0` proves the
//! whole slot landed. The same format is used for delta slots (a delta is
//! the XOR of old and new slot contents, so its "fields" are XOR images;
//! only its header/trailer pair is inspected directly).

use crate::StoreError;

/// Fixed header bytes before the key.
pub const KV_HEADER: usize = 16;
/// Byte offset of the Slot Version field (invalidation patches this word).
pub const SLOT_VER_OFF: usize = 8;
/// Slot Version value marking an invalidated (lost-race) KV pair.
pub const INVALID_SLOT_VERSION: u64 = u64::MAX;

/// Smallest size class (in 64 B units) that fits `key_len + val_len`.
pub fn class_for(key_len: usize, val_len: usize) -> Result<u8, StoreError> {
    let total = KV_HEADER + key_len + val_len + 1;
    let class = total.div_ceil(64);
    if key_len > u16::MAX as usize || class > u8::MAX as usize {
        return Err(StoreError::TooLarge);
    }
    Ok(class as u8)
}

/// Serializes a KV pair into a zeroed slot buffer of its class size.
///
/// # Panics
///
/// Panics if the buffer is too small for the pair (class mismatch is a
/// client bug, not input-dependent).
pub fn encode(
    buf: &mut [u8],
    write_version: u8,
    slot_version: u64,
    key: &[u8],
    value: &[u8],
    tombstone: bool,
) {
    let class_bytes = (KV_HEADER + key.len() + value.len() + 1).div_ceil(64) * 64;
    assert!(class_bytes <= buf.len(), "slot overflow");
    debug_assert!(write_version == 1 || write_version == 2);
    buf.fill(0);
    buf[0] = write_version;
    buf[1] = u8::from(tombstone);
    buf[2..4].copy_from_slice(&(key.len() as u16).to_le_bytes());
    buf[4..8].copy_from_slice(&(value.len() as u32).to_le_bytes());
    buf[8..16].copy_from_slice(&slot_version.to_le_bytes());
    buf[16..16 + key.len()].copy_from_slice(key);
    buf[16 + key.len()..16 + key.len() + value.len()].copy_from_slice(value);
    // The trailer sits at the end of the *derived* size class, so readers
    // that over-fetch still find it.
    buf[class_bytes - 1] = write_version;
}

/// A decoded view into a slot buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodedKv<'a> {
    /// Write Version (1 or 2).
    pub write_version: u8,
    /// DELETE tombstone?
    pub tombstone: bool,
    /// Logical Slot Version recorded at commit time.
    pub slot_version: u64,
    /// Key bytes.
    pub key: &'a [u8],
    /// Value bytes.
    pub value: &'a [u8],
}

impl DecodedKv<'_> {
    /// Whether this KV lost its commit race and was invalidated.
    pub fn is_invalidated(&self) -> bool {
        self.slot_version == INVALID_SLOT_VERSION
    }
}

/// Decodes a slot buffer; `None` if the slot is empty, torn, or malformed.
///
/// The buffer may be *longer* than the slot (readers over-fetch when the
/// advisory length is unknown): the trailer position is derived from the
/// header's own lengths, which pin the slot's size class.
pub fn decode(buf: &[u8]) -> Option<DecodedKv<'_>> {
    if buf.len() < KV_HEADER + 1 {
        return None;
    }
    let wv = buf[0];
    if wv == 0 || wv > 2 {
        return None;
    }
    let key_len = u16::from_le_bytes(buf[2..4].try_into().unwrap()) as usize;
    let val_len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    let class_bytes = (KV_HEADER + key_len + val_len + 1).div_ceil(64) * 64;
    if class_bytes > buf.len() || buf[class_bytes - 1] != wv {
        return None;
    }
    Some(DecodedKv {
        write_version: wv,
        tombstone: buf[1] & 1 == 1,
        slot_version: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        key: &buf[16..16 + key_len],
        value: &buf[16 + key_len..16 + key_len + val_len],
    })
}

/// Whether a slot buffer is *completely* written (header/trailer agree and
/// are non-zero). Used on raw delta slots too, where field decoding is
/// meaningless.
pub fn is_complete(buf: &[u8]) -> bool {
    !buf.is_empty() && buf[0] != 0 && buf[0] == buf[buf.len() - 1]
}

/// The next write version after `old` (0 → 1 → 2 → 1 …).
pub fn next_write_version(old: u8) -> u8 {
    if old == 1 {
        2
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        // Exact class-size buffer ("key" + "value bytes" → one 64 B unit).
        let mut buf = vec![0u8; 64];
        encode(&mut buf, 1, 0x1234, b"key", b"value bytes", false);
        let d = decode(&buf).unwrap();
        assert_eq!(d.write_version, 1);
        assert!(!d.tombstone);
        assert_eq!(d.slot_version, 0x1234);
        assert_eq!(d.key, b"key");
        assert_eq!(d.value, b"value bytes");
        assert!(!d.is_invalidated());
        assert!(is_complete(&buf));
    }

    #[test]
    fn tombstone_roundtrip() {
        let mut buf = vec![0u8; 64];
        encode(&mut buf, 2, 7, b"gone", b"", true);
        let d = decode(&buf).unwrap();
        assert!(d.tombstone);
        assert!(d.value.is_empty());
    }

    #[test]
    fn empty_slot_decodes_none() {
        assert!(decode(&[0u8; 64]).is_none());
        assert!(!is_complete(&[0u8; 64]));
    }

    #[test]
    fn torn_write_detected() {
        let mut buf = vec![0u8; 64];
        encode(&mut buf, 1, 3, b"k", b"v", false);
        let last = buf.len() - 1;
        buf[last] = 0; // Trailer never landed.
        assert!(decode(&buf).is_none());
        assert!(!is_complete(&buf));
        buf[last] = 2; // Trailer from a different write.
        assert!(decode(&buf).is_none());
    }

    #[test]
    fn invalidation_marks() {
        let mut buf = vec![0u8; 64];
        encode(&mut buf, 1, 5, b"k", b"v", false);
        buf[SLOT_VER_OFF..SLOT_VER_OFF + 8].copy_from_slice(&INVALID_SLOT_VERSION.to_le_bytes());
        let d = decode(&buf).unwrap();
        assert!(d.is_invalidated());
    }

    #[test]
    fn class_for_sizes() {
        // 16 + 3 + 44 + 1 = 64 → one unit.
        assert_eq!(class_for(3, 44).unwrap(), 1);
        assert_eq!(class_for(3, 45).unwrap(), 2);
        // The paper's 1024 B KV (12 B key): 16+12+996+1 = 1025 → 17 units.
        assert_eq!(class_for(12, 996).unwrap(), 17);
        assert!(class_for(100_000, 0).is_err());
        assert!(class_for(8, 20_000).is_err());
    }

    #[test]
    fn malformed_lengths_rejected() {
        let mut buf = vec![0u8; 64];
        encode(&mut buf, 1, 1, b"abc", b"xy", false);
        buf[4..8].copy_from_slice(&1000u32.to_le_bytes()); // Lie about val_len.
        assert!(decode(&buf).is_none());
    }

    #[test]
    fn write_version_toggles() {
        assert_eq!(next_write_version(0), 1);
        assert_eq!(next_write_version(1), 2);
        assert_eq!(next_write_version(2), 1);
    }
}
