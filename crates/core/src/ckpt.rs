//! Differential checkpointing of the index (paper §3.2.1, Figure 3).
//!
//! Each round, an MN server:
//!
//! 1. snapshots its local index (server CPU read; concurrent `RDMA_CAS`
//!    commits stay word-atomic, so no slot is ever torn),
//! 2. XORs the snapshot with the previous one to obtain the delta,
//! 3. LZ-compresses the delta (dominated by zero runs),
//! 4. ships it to the neighbouring column, which
//! 5. decompresses and XOR-applies it to its stored copy.
//!
//! After the round the sender bumps its **Index Version**; while the live
//! index is at version `i`, the neighbour's checkpoint is at `i − 1`
//! (§3.2.3). Rounds are synchronized across the coding group by the store's
//! tick (the paper's "leading server trigger"), which keeps Index Versions
//! comparable across MNs.

use aceso_erasure::xor_into;
use std::time::Instant;

/// Per-step measurements of one checkpoint round (paper Figure 19).
#[derive(Clone, Copy, Debug, Default)]
pub struct CkptReport {
    /// Uncompressed index size in bytes.
    pub raw_len: usize,
    /// Compressed delta size in bytes.
    pub compressed_len: usize,
    /// Snapshot copy + XOR-with-last time (µs) — "Copy&XOR".
    pub copy_xor_us: f64,
    /// LZ compression time (µs).
    pub compress_us: f64,
    /// Receiver decompression time (µs).
    pub decompress_us: f64,
    /// Receiver XOR-apply time (µs).
    pub apply_xor_us: f64,
    /// The Index Version this round's checkpoint represents.
    pub index_version: u64,
}

/// Sender-side state: the snapshot shipped last round.
pub struct CkptSender {
    last: Vec<u8>,
}

impl CkptSender {
    /// Starts from an all-zero baseline (the first round ships the full
    /// index, compressed).
    pub fn new(index_bytes: usize) -> Self {
        CkptSender {
            last: vec![0u8; index_bytes],
        }
    }

    /// Re-bases the sender on a known snapshot (recovery: the restored
    /// index), so the next delta is incremental again.
    pub fn rebase(&mut self, snapshot: Vec<u8>) {
        self.last = snapshot;
    }

    /// Forces the next round to ship the full index (neighbour replaced).
    pub fn reset_to_full(&mut self) {
        self.last.fill(0);
    }

    /// Computes this round's compressed delta from a fresh snapshot.
    ///
    /// Returns `(compressed, raw_len, copy_xor_us, compress_us)` and
    /// retains the snapshot for the next round.
    pub fn round(&mut self, snapshot: Vec<u8>) -> (Vec<u8>, usize, f64, f64) {
        let t0 = Instant::now();
        let mut delta = snapshot.clone();
        xor_into(&mut delta, &self.last);
        let copy_xor_us = t0.elapsed().as_secs_f64() * 1e6;

        let t1 = Instant::now();
        let compressed = aceso_codec::compress(&delta);
        let compress_us = t1.elapsed().as_secs_f64() * 1e6;

        let raw_len = snapshot.len();
        self.last = snapshot;
        (compressed, raw_len, copy_xor_us, compress_us)
    }
}

/// Receiver-side state: the reconstructed checkpoint of one neighbour.
pub struct CkptReceiver {
    /// The neighbour's index bytes as of its last round.
    pub data: Vec<u8>,
    /// Index Version of the held checkpoint.
    pub index_version: u64,
}

impl CkptReceiver {
    /// Starts from zeros (matching the sender's zero baseline).
    pub fn new(index_bytes: usize) -> Self {
        CkptReceiver {
            data: vec![0u8; index_bytes],
            index_version: 0,
        }
    }

    /// Applies one received delta. Returns `(decompress_us, xor_us)`.
    pub fn apply(
        &mut self,
        compressed: &[u8],
        raw_len: usize,
        index_version: u64,
    ) -> Result<(f64, f64), aceso_codec::CodecError> {
        let t0 = Instant::now();
        let delta = aceso_codec::decompress(compressed, raw_len)?;
        let decompress_us = t0.elapsed().as_secs_f64() * 1e6;

        let t1 = Instant::now();
        if self.data.len() != delta.len() {
            // Neighbour geometry changed: adopt the delta as a full image.
            self.data = delta;
        } else {
            xor_into(&mut self.data, &delta);
        }
        let xor_us = t1.elapsed().as_secs_f64() * 1e6;
        self.index_version = index_version;
        Ok((decompress_us, xor_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(len: usize, stamp: u8) -> Vec<u8> {
        let mut v = vec![0u8; len];
        for i in (0..len).step_by(97) {
            v[i] = stamp;
        }
        v
    }

    #[test]
    fn sender_receiver_converge() {
        let len = 4096;
        let mut tx = CkptSender::new(len);
        let mut rx = CkptReceiver::new(len);
        for round in 1..=5u8 {
            let s = snap(len, round);
            let (comp, raw, _, _) = tx.round(s.clone());
            rx.apply(&comp, raw, round as u64).unwrap();
            assert_eq!(rx.data, s, "round {round}");
            assert_eq!(rx.index_version, round as u64);
        }
    }

    #[test]
    fn deltas_shrink_when_index_is_stable() {
        // A dense (poorly compressible) first snapshot…
        let len = 1 << 16;
        let mut tx = CkptSender::new(len);
        let mut x = 1u64;
        let s1: Vec<u8> = (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let (full, _, _, _) = tx.round(s1.clone());
        assert!(full.len() > len / 2, "dense snapshot should not collapse");
        // …then a round where only one byte changed: tiny delta.
        let mut s2 = s1;
        s2[1234] ^= 0xFF;
        let (delta, _, _, _) = tx.round(s2);
        assert!(delta.len() < full.len() / 100);
        assert!(
            delta.len() < 1024,
            "near-empty delta should be tiny: {}",
            delta.len()
        );
    }

    #[test]
    fn reset_to_full_ships_everything() {
        let len = 4096;
        let mut tx = CkptSender::new(len);
        let mut rx = CkptReceiver::new(len);
        let s = snap(len, 3);
        let (c, r, _, _) = tx.round(s.clone());
        rx.apply(&c, r, 1).unwrap();

        // Fresh receiver (replacement neighbour) + full resend.
        let mut rx2 = CkptReceiver::new(len);
        tx.reset_to_full();
        let s2 = snap(len, 4);
        let (c2, r2, _, _) = tx.round(s2.clone());
        rx2.apply(&c2, r2, 2).unwrap();
        assert_eq!(rx2.data, s2);
    }

    #[test]
    fn rebase_keeps_deltas_small_after_recovery() {
        let len = 4096;
        let mut tx = CkptSender::new(len);
        let restored = snap(len, 9);
        tx.rebase(restored.clone());
        let mut next = restored;
        next[7] ^= 1;
        let (c, _, _, _) = tx.round(next);
        assert!(c.len() < 256);
    }

    #[test]
    fn corrupt_delta_is_an_error() {
        let mut rx = CkptReceiver::new(64);
        assert!(rx.apply(&[1, 2, 3], 64, 1).is_err());
    }
}
