//! Elastic membership: the online MN add/drain migrator.
//!
//! A [`Migration`] moves one column off its current memory node onto a
//! fresh one while client traffic continues — the mechanics are identical
//! for a capacity **join** (a new node takes over a column) and a planned
//! **drain** (a column is evacuated before its node retires); only the
//! [`ElasticKind`] label differs.
//!
//! The migrator is an explicit step machine so chaos harnesses can kill
//! nodes at every step boundary:
//!
//! 1. **Announce** — add the target node (membership epoch bump), open the
//!    migration in the [`PlacementMap`], mark the column degraded (clients
//!    must not trust delta bytes mid-move), and install the server-side
//!    dual-write context ([`MnServer::set_migration`]).
//! 2. **Copy batch** (× `elastic_groups`) — fence one placement group's
//!    data/delta blocks on the source at the *next* placement epoch, copy
//!    the bytes via [`ServerReq::MigrateBatch`], then publish the group as
//!    moved. Stale clients bounce off the fence, refresh, and re-resolve
//!    onto the target; blocks are copied byte-identically at the same
//!    offsets so every packed address stays valid.
//! 3. **Re-encode parity** — fence the parity cells, then
//!    [`ServerReq::MigrateParity`]: quiescent stripes (no registered
//!    delta) are *re-encoded* from the live data cells, busy ones are
//!    byte-copied, and parity primaries flip to the target.
//! 4. **Publish** — build the replacement server on the target, fence the
//!    whole source region, copy the Index/Meta areas
//!    ([`ServerReq::MigrateFinish`]), hand the server state over, replace
//!    the directory entry and close the migration (the source node joins
//!    the snapshot's `retired` list, purging stale client caches).
//! 5. **Free** — drain the source node (membership epoch bump via
//!    [`aceso_rdma::FailureEvent::NodeDrained`], not a failure) and drop
//!    its fences.
//!
//! Aborting before the publish is always safe: the dual-write mirror kept
//! the source byte-fresh, so clearing the migration makes the directory
//! authoritative again with no data movement.

use crate::client::RetryPolicy;
use crate::placement::{ElasticKind, PlacementMap};
use crate::proto::{ServerReq, ServerResp};
use crate::server::{MigrationCtx, MnServer};
use crate::store::AcesoStore;
use crate::{Result, StoreError};
use aceso_blockalloc::CellKind;
use aceso_rdma::{rpc_channel, MemoryNode, NodeId};
use std::sync::Arc;
use std::time::Instant;

/// The step a [`Migration::step`] call just performed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElasticStep {
    /// Target added, migration opened, dual-write armed.
    Announce,
    /// Placement group `g` copied and published as moved.
    CopyBatch(usize),
    /// Parity cells re-encoded/copied onto the target.
    Reencode,
    /// Column republished on the target; source retired from placement.
    Publish,
    /// Source node drained and unfenced.
    Free,
    /// Nothing left to do (the migration completed or was aborted).
    Done,
}

impl core::fmt::Display for ElasticStep {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ElasticStep::Announce => write!(f, "announce"),
            ElasticStep::CopyBatch(g) => write!(f, "copy-batch-{g}"),
            ElasticStep::Reencode => write!(f, "reencode"),
            ElasticStep::Publish => write!(f, "publish"),
            ElasticStep::Free => write!(f, "free"),
            ElasticStep::Done => write!(f, "done"),
        }
    }
}

/// Counters of one migration (also exported through the store's obs
/// registry as `elastic.{batches,blocks_moved,reencode_us,aborts}`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ElasticReport {
    /// Copy batches executed.
    pub batches: u64,
    /// Data/delta blocks copied.
    pub blocks_moved: u64,
    /// Wall-clock µs spent in the parity re-encode step.
    pub reencode_us: u64,
    /// 1 if the migration was aborted.
    pub aborts: u64,
}

enum State {
    Announce,
    Copy(usize),
    Reencode,
    Publish,
    Free,
    Done,
}

/// One in-flight elastic migration. Drive it with [`Migration::step`]
/// (chaos kills between steps) or [`Migration::run`] (everything at once).
pub struct Migration {
    store: Arc<AcesoStore>,
    kind: ElasticKind,
    col: usize,
    from: Arc<MemoryNode>,
    to: Option<Arc<MemoryNode>>,
    groups: usize,
    state: State,
    report: ElasticReport,
}

impl AcesoStore {
    /// Starts a capacity-add migration: a fresh node will join and take
    /// over `col`. Nothing happens until the first [`Migration::step`].
    pub fn begin_join(self: &Arc<Self>, col: usize) -> Result<Migration> {
        Migration::new(self, ElasticKind::Join, col)
    }

    /// Starts a planned drain: `col` will be evacuated off its current
    /// node onto a fresh one, and the old node retired.
    pub fn begin_drain(self: &Arc<Self>, col: usize) -> Result<Migration> {
        Migration::new(self, ElasticKind::Drain, col)
    }
}

impl Migration {
    fn new(store: &Arc<AcesoStore>, kind: ElasticKind, col: usize) -> Result<Self> {
        let from = store
            .cluster
            .node(store.directory().node_of(col))
            .map_err(StoreError::from)?;
        if store.placement().snapshot().migration.is_some() {
            // One migration at a time: placement groups are per-column.
            return Err(StoreError::Shutdown);
        }
        Ok(Migration {
            groups: store.cfg.elastic_groups.max(1),
            store: Arc::clone(store),
            kind,
            col,
            from,
            to: None,
            state: State::Announce,
            report: ElasticReport::default(),
        })
    }

    /// Join or drain (chaos targeting, labels).
    pub fn kind(&self) -> ElasticKind {
        self.kind
    }

    /// The column being migrated.
    pub fn col(&self) -> usize {
        self.col
    }

    /// The node the column is moving off.
    pub fn from_node(&self) -> NodeId {
        self.from.id
    }

    /// The node the column is moving onto (`None` before the announce).
    pub fn to_node(&self) -> Option<NodeId> {
        self.to.as_ref().map(|n| n.id)
    }

    /// Counters so far.
    pub fn report(&self) -> ElasticReport {
        self.report
    }

    /// Whether the publish step has completed (aborting is no longer
    /// possible; a target failure now needs regular MN recovery).
    pub fn published(&self) -> bool {
        matches!(self.state, State::Free | State::Done)
    }

    fn placement(&self) -> &Arc<PlacementMap> {
        self.store.placement()
    }

    /// RPC to the column's *current* directory endpoint, retried under the
    /// unified policy (the server may be briefly between epochs).
    fn rpc(&self, req: ServerReq, bytes: usize) -> Result<ServerResp> {
        let dir = self.store.directory();
        let mut policy = RetryPolicy::new(16);
        loop {
            match self
                .store
                .ctl_dm()
                .rpc(dir.node_of(self.col), &dir.rpc_of(self.col), req.clone(), bytes)
            {
                Ok(r) => return Ok(r),
                Err(e) => {
                    let Some(us) = policy.charge() else {
                        return Err(e.into());
                    };
                    self.store.ctl_dm().backoff(us);
                }
            }
        }
    }

    /// Block-area byte ranges of placement group `g` (data + delta blocks;
    /// parity moves separately in the re-encode step).
    fn group_ranges(&self, g: usize) -> Vec<(u64, usize)> {
        let blocks = &self.store.map.blocks;
        (0..blocks.blocks_per_node() as u32)
            .filter(|&id| !matches!(blocks.kind_of(id), CellKind::Parity { .. }))
            .filter(|&id| id as usize % self.groups == g)
            .map(|id| (blocks.block_offset(id), blocks.block_size as usize))
            .collect()
    }

    /// Byte ranges of this column's parity cells.
    fn parity_ranges(&self) -> Vec<(u64, usize)> {
        let blocks = &self.store.map.blocks;
        (0..blocks.blocks_per_node() as u32)
            .filter(|&id| matches!(blocks.kind_of(id), CellKind::Parity { .. }))
            .map(|id| (blocks.block_offset(id), blocks.block_size as usize))
            .collect()
    }

    fn obs_add(&self, name: &str, v: u64) {
        let obs = self.store.obs();
        if obs.is_enabled() {
            obs.add(name, v);
        }
    }

    /// Performs the next migrator step and reports which one it was.
    /// Returns [`ElasticStep::Done`] once the migration has completed (or
    /// was aborted). Errors leave the state machine where it was, so the
    /// caller can retry, [`Migration::abort`], or hand the column to
    /// regular recovery.
    pub fn step(&mut self) -> Result<ElasticStep> {
        match self.state {
            State::Announce => {
                self.step_announce()?;
                self.state = State::Copy(0);
                Ok(ElasticStep::Announce)
            }
            State::Copy(g) => {
                self.step_copy(g)?;
                self.state = if g + 1 < self.groups {
                    State::Copy(g + 1)
                } else {
                    State::Reencode
                };
                Ok(ElasticStep::CopyBatch(g))
            }
            State::Reencode => {
                self.step_reencode()?;
                self.state = State::Publish;
                Ok(ElasticStep::Reencode)
            }
            State::Publish => {
                self.step_publish()?;
                self.state = State::Free;
                Ok(ElasticStep::Publish)
            }
            State::Free => {
                self.step_free();
                self.state = State::Done;
                Ok(ElasticStep::Free)
            }
            State::Done => Ok(ElasticStep::Done),
        }
    }

    /// Runs every remaining step.
    pub fn run(&mut self) -> Result<ElasticReport> {
        while self.step()? != ElasticStep::Done {}
        Ok(self.report)
    }

    fn step_announce(&mut self) -> Result<()> {
        // Membership first: the join is visible (and epoch-bumped) before
        // any placement change references the new node.
        let to = self.store.cluster.add_node(self.store.map.region_len);
        // Server-side dual-write from here on: allocation zeroing, delta
        // encoding and reclamation all land on both regions.
        self.store.server(self.col).set_migration(Some(MigrationCtx {
            target: Arc::clone(&to),
            parity_moved: false,
        }));
        self.placement()
            .begin(self.col, self.from.id, to.id, self.groups);
        // Mid-migration blocks are degraded-readable: recovery paths must
        // not trust delta copies hosted on a half-moved column.
        self.store.degraded.lock().push(self.col);
        self.to = Some(to);
        Ok(())
    }

    fn step_copy(&mut self, g: usize) -> Result<()> {
        let ranges = self.group_ranges(g);
        // Fence before copying: a client still resolving through the
        // previous snapshot is rejected instead of writing bytes the copy
        // has already passed. The fence epoch is exactly the epoch
        // `mark_moved` publishes below.
        let fence_epoch = self.placement().next_epoch();
        for &(start, len) in &ranges {
            self.from.install_fence(start, len, fence_epoch);
        }
        let moved = ranges.len() as u64;
        self.rpc(
            ServerReq::MigrateBatch {
                ranges: ranges.clone(),
            },
            16 + 16 * ranges.len(),
        )?
        .expect_ok()?;
        self.placement().mark_moved(g);
        self.report.batches += 1;
        self.report.blocks_moved += moved;
        self.obs_add("elastic.batches", 1);
        self.obs_add("elastic.blocks_moved", moved);
        Ok(())
    }

    fn step_reencode(&mut self) -> Result<()> {
        let t = Instant::now();
        let fence_epoch = self.placement().next_epoch();
        for (start, len) in self.parity_ranges() {
            self.from.install_fence(start, len, fence_epoch);
        }
        self.rpc(ServerReq::MigrateParity, 16)?.expect_ok()?;
        self.placement().mark_parity_moved();
        let us = t.elapsed().as_micros() as u64;
        self.report.reencode_us += us;
        self.obs_add("elastic.reencode_us", us);
        Ok(())
    }

    fn step_publish(&mut self) -> Result<()> {
        let to = Arc::clone(self.to.as_ref().expect("announced"));
        let old = self.store.server(self.col);
        // Build the replacement server *before* the finish copy: its
        // constructor stamps a fresh Index Area (Index Version 1) into the
        // target region, which the copy below then overwrites with the
        // real one — never the other way around.
        let server = MnServer::new(
            self.col,
            Arc::clone(&to),
            self.store.map,
            self.store.cfg.reclaim_obsolete_ratio,
            self.store.cfg.reclaim_free_ratio,
        );
        // Whole-region fence at the publish epoch on *both* nodes. The
        // source fence makes every placement client refresh before touching
        // it again (refreshed snapshots no longer address it — the node
        // turns `retired`). The target needs the same fence: a client whose
        // snapshot still shows the migration open resolves moved groups to
        // the target as *primary* and the source as dual-write *mirror* —
        // without a target fence its primary write lands, the mirror leg
        // then aborts the batch on the source fence, and the retry
        // re-places the KV into a fresh slot, orphaning a half-written
        // delta pair. Fencing the target bounces such clients before any
        // byte lands.
        let fence_epoch = self.placement().next_epoch();
        self.from
            .install_fence(0, self.store.map.region_len, fence_epoch);
        to.install_fence(0, self.store.map.region_len, fence_epoch);
        // Copy Index + Meta areas and stop the old server's loop.
        self.rpc(ServerReq::MigrateFinish, 16)?.expect_ok()?;
        // Hand the authoritative server state over (records, free lists,
        // reuse backups, checkpoint state, replicas held for peers).
        std::mem::swap(&mut *server.records.lock(), &mut *old.records.lock());
        std::mem::swap(&mut *server.alloc.lock(), &mut *old.alloc.lock());
        std::mem::swap(&mut *server.old_copies.lock(), &mut *old.old_copies.lock());
        std::mem::swap(&mut *server.sender.lock(), &mut *old.sender.lock());
        std::mem::swap(&mut *server.received.lock(), &mut *old.received.lock());
        std::mem::swap(
            &mut *server.meta_replicas.lock(),
            &mut *old.meta_replicas.lock(),
        );
        old.set_migration(None);
        // Republish the column on the target.
        let (rpc_client, rpc_server) = rpc_channel();
        self.store.directory().replace(self.col, to.id, rpc_client);
        self.store.set_server(self.col, Arc::clone(&server));
        {
            let d = Arc::clone(self.store.directory());
            let dm = self.store.cluster.background_client();
            self.store
                .spawn_thread(std::thread::spawn(move || server.run(rpc_server, dm, d)));
        }
        self.placement().finish();
        self.store.degraded.lock().retain(|c| *c != self.col);
        Ok(())
    }

    fn step_free(&mut self) {
        // A drain, not a failure: subscribers see `NodeDrained` and start
        // no recovery. Fences die with the node (verbs now fail with
        // `NodeUnreachable`, which every client path already handles).
        self.store.cluster.drain_node(self.from.id);
        self.from.clear_fences();
        self.placement().bump();
    }

    /// Aborts a not-yet-published migration: placement reverts to the
    /// directory (the dual-write mirror kept the source byte-fresh), the
    /// fences drop, and the target node is retired unused. After the
    /// publish this is a no-op — the move already happened; a target
    /// failure from then on is ordinary MN failure handling.
    pub fn abort(&mut self) {
        if self.published() {
            return;
        }
        let announced = !matches!(self.state, State::Announce);
        self.state = State::Done;
        if !announced {
            return;
        }
        self.placement().abort();
        self.from.clear_fences();
        self.store.server(self.col).set_migration(None);
        self.store.degraded.lock().retain(|c| *c != self.col);
        if let Some(to) = self.to.take() {
            // The half-filled target never served anything: retire it.
            self.store.cluster.drain_node(to.id);
        }
        self.report.aborts += 1;
        self.obs_add("elastic.aborts", 1);
    }
}

impl Drop for Migration {
    fn drop(&mut self) {
        // A dropped in-flight migration must not leave fences or a
        // dual-write context behind.
        if !matches!(self.state, State::Done) {
            self.abort();
        }
    }
}
