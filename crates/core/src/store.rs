//! Top-level orchestration: launching a coding group, ticking checkpoints,
//! injecting failures, and shutting down.

use crate::ckpt::CkptReport;
use crate::client::AcesoClient;
use crate::config::{AcesoConfig, ClientTuning, MemoryMap};
use crate::placement::PlacementMap;
use crate::proto::{ServerReq, ServerResp};
use crate::server::{Directory, MnServer};
use crate::{Result, StoreError};
use aceso_blockalloc::Role;
use aceso_obs::Obs;
use aceso_rdma::{rpc_channel, Cluster, ClusterConfig, DmClient};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Breakdown of Block Area memory consumption (paper Figure 12).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryUsage {
    /// Bytes of live (referenced) KV pairs.
    pub valid: u64,
    /// Bytes of erasure parity (the redundancy).
    pub redundancy: u64,
    /// Bytes of live DELTA blocks.
    pub delta: u64,
    /// Bytes of allocated DATA blocks (valid + obsolete + unwritten).
    pub data_allocated: u64,
}

impl MemoryUsage {
    /// Total footprint the paper compares (valid + redundancy + delta).
    pub fn total(&self) -> u64 {
        self.valid + self.redundancy + self.delta
    }
}

/// One running Aceso coding group.
pub struct AcesoStore {
    /// The simulated memory pool.
    pub cluster: Arc<Cluster>,
    /// The configuration it was launched with.
    pub cfg: AcesoConfig,
    /// The derived memory map (identical on every MN).
    pub map: MemoryMap,
    dir: Arc<Directory>,
    servers: Mutex<Vec<Arc<MnServer>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    next_cli: AtomicU32,
    running: Arc<AtomicBool>,
    ctl: DmClient,
    /// Columns whose PARITY rebuild is deferred until every column is back
    /// (multi-failure recovery cannot rebuild parity from dead peers).
    pub(crate) pending_parity: Mutex<Vec<usize>>,
    /// Columns serving reads whose hosted parity/delta copies are not yet
    /// re-materialized (the degraded window between the Index tier and the
    /// parity rebuild). CN recovery must not trust delta bytes hosted here.
    pub(crate) degraded: Mutex<Vec<usize>>,
    /// Observability handle. Off by default; [`AcesoStore::install_recorder`]
    /// turns it on for clients created afterwards and for recovery/scrub/
    /// checkpoint instrumentation.
    obs: Mutex<Obs>,
    /// Epoch-versioned column→node placement (elastic migration). Seeded
    /// from the launch membership epoch so placement epochs extend the
    /// membership-epoch sequence.
    placement: Arc<PlacementMap>,
}

impl AcesoStore {
    /// Launches a coding group of `cfg.num_mns` memory nodes with servers.
    pub fn launch(cfg: AcesoConfig) -> Result<Arc<Self>> {
        let map = cfg.memory_map();
        let cluster = Cluster::new(ClusterConfig {
            num_mns: cfg.num_mns,
            region_len: map.region_len,
            cost: cfg.cost,
        });
        let mut servers = Vec::new();
        let mut rpc_servers = Vec::new();
        let mut dir_rows = Vec::new();
        for (col, node) in cluster.nodes().into_iter().enumerate() {
            let (rpc_client, rpc_server) = rpc_channel::<ServerReq, ServerResp>();
            let server = MnServer::new(
                col,
                node,
                map,
                cfg.reclaim_obsolete_ratio,
                cfg.reclaim_free_ratio,
            );
            dir_rows.push((server.node.id, rpc_client));
            rpc_servers.push(rpc_server);
            servers.push(server);
        }
        let dir = Arc::new(Directory::new(dir_rows));
        let mut threads = Vec::new();
        for (server, rpc_server) in servers.iter().zip(rpc_servers) {
            let s = Arc::clone(server);
            let d = Arc::clone(&dir);
            let dm = cluster.background_client();
            threads.push(std::thread::spawn(move || s.run(rpc_server, dm, d)));
        }
        let store = Arc::new(AcesoStore {
            ctl: cluster.background_client(),
            placement: Arc::new(PlacementMap::new(cluster.master.view().epoch)),
            cluster,
            cfg: cfg.clone(),
            map,
            dir,
            servers: Mutex::new(servers),
            threads: Mutex::new(threads),
            next_cli: AtomicU32::new(1),
            running: Arc::new(AtomicBool::new(true)),
            pending_parity: Mutex::new(Vec::new()),
            degraded: Mutex::new(Vec::new()),
            obs: Mutex::new(Obs::off()),
        });
        if cfg.auto_checkpoint {
            let weak = Arc::downgrade(&store);
            let running = Arc::clone(&store.running);
            let interval = std::time::Duration::from_millis(cfg.ckpt_interval_ms.max(1));
            store.threads.lock().push(std::thread::spawn(move || {
                while running.load(Ordering::Acquire) {
                    std::thread::sleep(interval);
                    let Some(store) = weak.upgrade() else { break };
                    let _ = store.checkpoint_tick();
                }
            }));
        }
        Ok(store)
    }

    /// Creates a new client with default tuning.
    pub fn client(self: &Arc<Self>) -> Result<AcesoClient> {
        self.client_with(ClientTuning::default())
    }

    /// Creates a new client with explicit tuning (factor analysis).
    pub fn client_with(self: &Arc<Self>, tuning: ClientTuning) -> Result<AcesoClient> {
        if !self.running.load(Ordering::Acquire) {
            return Err(StoreError::Shutdown);
        }
        let id = self.next_cli.fetch_add(1, Ordering::Relaxed);
        Ok(AcesoClient::new(
            Arc::clone(&self.cluster),
            Arc::clone(&self.dir),
            self.map,
            Arc::clone(&self.placement),
            id,
            tuning,
            self.cfg.bitmap_flush_every,
            self.obs(),
        ))
    }

    /// Re-creates a client with a *specific* id (CN crash recovery: the
    /// restarted client must adopt the crashed one's CLI ID).
    pub fn client_with_id(self: &Arc<Self>, cli_id: u32) -> AcesoClient {
        AcesoClient::new(
            Arc::clone(&self.cluster),
            Arc::clone(&self.dir),
            self.map,
            Arc::clone(&self.placement),
            cli_id,
            ClientTuning::default(),
            self.cfg.bitmap_flush_every,
            self.obs(),
        )
    }

    /// The placement map (elastic migration, tests).
    pub fn placement(&self) -> &Arc<PlacementMap> {
        &self.placement
    }

    /// Columns currently in a degraded window — their hosted parity/delta
    /// copies are not trustworthy yet (mid-recovery, or an in-flight
    /// elastic migration). Exposed for tests and chaos invariants.
    pub fn degraded_columns(&self) -> Vec<usize> {
        self.degraded.lock().clone()
    }

    /// Installs a metrics recorder: clients created from now on, recovery
    /// runs, scrubs and checkpoint rounds record into `registry`. Existing
    /// clients keep their (un)instrumented state.
    pub fn install_recorder(&self, registry: std::sync::Arc<aceso_obs::Registry>) {
        *self.obs.lock() = Obs::on(registry);
    }

    /// The current observability handle (cheap clone; off by default).
    pub fn obs(&self) -> Obs {
        self.obs.lock().clone()
    }

    /// The column directory (clients, recovery).
    pub fn directory(&self) -> &Arc<Directory> {
        &self.dir
    }

    /// The server state of `col` (stats, recovery orchestration).
    pub fn server(&self, col: usize) -> Arc<MnServer> {
        Arc::clone(&self.servers.lock()[col])
    }

    pub(crate) fn set_server(&self, col: usize, server: Arc<MnServer>) {
        self.servers.lock()[col] = server;
    }

    pub(crate) fn spawn_thread(&self, t: JoinHandle<()>) {
        self.threads.lock().push(t);
    }

    pub(crate) fn ctl_dm(&self) -> &DmClient {
        &self.ctl
    }

    /// Runs one synchronized checkpoint round across all columns (the
    /// paper's leading-server trigger), returning each column's report.
    pub fn checkpoint_tick(&self) -> Result<Vec<CkptReport>> {
        let n = self.dir.len();
        let mut reports = Vec::with_capacity(n);
        for col in 0..n {
            let node = self.dir.node_of(col);
            if self.cluster.node(node).is_err() {
                continue; // Crashed column: skipped until recovered.
            }
            if let Ok(ServerResp::CkptDone { report }) =
                self.ctl
                    .rpc(node, &self.dir.rpc_of(col), ServerReq::CkptRound, 16)
            {
                reports.push(report);
            }
        }
        let obs = self.obs();
        if obs.is_enabled() {
            obs.add("ckpt.rounds", 1);
            for r in &reports {
                obs.add("ckpt.raw_bytes", r.raw_len as u64);
                obs.add("ckpt.compressed_bytes", r.compressed_len as u64);
                obs.observe("ckpt.compress.us", r.compress_us);
            }
        }
        Ok(reports)
    }

    /// Injects a fail-stop crash of the MN currently serving `col`.
    /// Idempotent: returns whether the node was alive (see
    /// [`aceso_rdma::Cluster::kill_node`]).
    pub fn kill_mn(&self, col: usize) -> bool {
        let node = self.dir.node_of(col);
        let server = self.server(col);
        server.alive.store(false, Ordering::Release);
        self.cluster.kill_node(node)
    }

    /// Sums Block Area consumption across the group (Figure 12).
    ///
    /// "Valid" counts live KV slots: completely written, not invalidated,
    /// not marked obsolete. Unflushed client bitmaps make this an upper
    /// bound; benches flush before measuring.
    pub fn memory_usage(&self) -> MemoryUsage {
        let mut usage = MemoryUsage::default();
        let bs = self.map.blocks.block_size;
        for server in self.servers.lock().iter() {
            if !server.node.is_alive() {
                continue;
            }
            let recs = server.records.lock();
            for (id, rec) in recs.iter().enumerate() {
                match rec.role {
                    Role::Data => {
                        usage.data_allocated += bs;
                        let slots = rec.slots(bs);
                        if slots == 0 {
                            continue;
                        }
                        let bytes = server
                            .node
                            .region
                            .read_vec(self.map.blocks.block_offset(id as u32), bs as usize)
                            .expect("block read");
                        let sb = (rec.slot_len64 as usize) * 64;
                        for s in 0..slots {
                            let slot = &bytes[s * sb..(s + 1) * sb];
                            if rec.bitmap.get(s) {
                                continue;
                            }
                            if let Some(d) = crate::kv::decode(slot) {
                                if !d.is_invalidated() {
                                    usage.valid += sb as u64;
                                }
                            }
                        }
                    }
                    Role::Delta => usage.delta += bs,
                    _ => {}
                }
            }
        }
        // X-Code parity share: 2 parity cells per n−2 data cells.
        usage.redundancy = usage.data_allocated * 2 / (self.cfg.num_mns as u64 - 2);
        usage
    }

    /// Stops background threads and servers; the memory pool itself remains
    /// readable for post-mortem inspection.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::Release);
        for s in self.servers.lock().iter() {
            s.alive.store(false, Ordering::Release);
        }
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for AcesoStore {
    fn drop(&mut self) {
        self.shutdown();
    }
}
