//! The client-side index cache: bounded, hotness-aware, deterministic.
//!
//! Every [`crate::AcesoClient`] keeps a private cache mapping keys to the
//! index slot that last resolved them — both the slot *address* (so an
//! UPDATE can speculate straight to the commit CAS) and the slot *value*
//! (so a hot SEARCH can read the KV pair and re-read the 16 B slot in one
//! doorbell batch, ~1 RTT instead of 2, §3.5.1). Fills never pay their own
//! round trip: they ride the read batches SEARCH and UPDATE already issue.
//!
//! Three properties this module enforces:
//!
//! * **Bounded.** The map holds at most `capacity` entries
//!   ([`ClientTuning::cache_capacity`](crate::ClientTuning::cache_capacity)).
//!   Eviction is CLOCK / second-chance: every hit sets a reference bit, the
//!   clock hand sweeps keys in order giving each referenced entry one more
//!   round before it goes. CLOCK approximates LRU without per-hit
//!   reordering, which keeps hits O(log n) and — unlike an LRU list — keeps
//!   the structure trivially deterministic.
//! * **Deterministic.** Backed by a `BTreeMap`, so the eviction sweep and
//!   every purge iterate in key order — never `HashMap` iteration order
//!   (the PR 6 lesson: seed-stable benches and chaos schedules must not
//!   depend on hasher state).
//! * **Safely invalidated.** The cache never *serves* stale data on its
//!   own authority — every hit is verified against fabric state (slot
//!   re-read, or the commit CAS itself), and the client drops entries on
//!   commit-CAS failure, on epoch fences / placement refresh (any entry
//!   whose column's placement changed after the fill, see
//!   [`crate::PlacementSnapshot::col_epoch`]), and on recovery
//!   notification. The `client.cache.invalidations` counter tracks these
//!   drops; `evictions` counts only capacity evictions.

use aceso_index::{SlotAtomic, SlotMeta};
use aceso_obs::{Counter, Registry};
use aceso_rdma::GlobalAddr;
use std::collections::BTreeMap;

/// One cached index resolution for a key.
///
/// Holds everything a client needs to skip the index walk: where the slot
/// lives (`slot_addr`, for the speculative commit CAS), what it contained
/// (`atomic` + `meta`, for the batched KV-read-plus-verify fast path), and
/// the placement epoch the fill was made under (`fill_epoch`, for the
/// epoch-based purge in `refresh_placement`).
#[derive(Clone, Copy, Debug)]
pub struct CacheEntry {
    /// Physical address of the 16 B index slot at fill time.
    pub slot_addr: GlobalAddr,
    /// The slot's Atomic word as last observed (fp, version, KV pointer).
    pub atomic: SlotAtomic,
    /// The slot's Meta word as last observed (epoch, lock, obsolete bits).
    pub meta: SlotMeta,
    /// True when the cached slot recorded a tombstone (deleted key).
    pub tombstone: bool,
    /// The client's placement epoch when this entry was filled. An entry
    /// is purged once the placement of any column it references advanced
    /// past this epoch.
    pub fill_epoch: u64,
}

/// Pre-resolved counter handles, present only when the owning store has a
/// recorder installed — the disabled path stays zero-overhead.
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
}

impl CacheMetrics {
    fn new(reg: &Registry) -> Self {
        CacheMetrics {
            hits: reg.counter("client.cache.hits"),
            misses: reg.counter("client.cache.misses"),
            evictions: reg.counter("client.cache.evictions"),
            invalidations: reg.counter("client.cache.invalidations"),
        }
    }
}

struct Slot {
    entry: CacheEntry,
    /// CLOCK reference bit: set on every hit, cleared (one second chance)
    /// when the hand sweeps past.
    referenced: bool,
}

/// A bounded, deterministic, second-chance index cache (see the module
/// docs for the eviction and invalidation contract).
pub struct IndexCache {
    map: BTreeMap<Vec<u8>, Slot>,
    capacity: usize,
    /// The CLOCK hand: the key the next eviction sweep starts from.
    /// `None` means "start from the first key". Keys removed out from
    /// under the hand are harmless — the sweep is a range query.
    hand: Option<Vec<u8>>,
    metrics: Option<CacheMetrics>,
}

impl IndexCache {
    /// Creates a cache bounded at `capacity` entries. A capacity of 0
    /// disables caching entirely (every insert is a no-op).
    pub fn new(capacity: usize, reg: Option<&Registry>) -> Self {
        IndexCache {
            map: BTreeMap::new(),
            capacity,
            hand: None,
            metrics: reg.map(CacheMetrics::new),
        }
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when `key` is cached (does not touch recency or counters).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.map.contains_key(key)
    }

    /// Re-bounds the cache (factor analysis / `set_tuning`), evicting down
    /// to the new capacity if it shrank.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > self.capacity {
            self.evict_one();
        }
    }

    /// Looks `key` up, counting a hit or a miss and setting the reference
    /// bit on a hit. This is the op-entry lookup; use [`IndexCache::peek`]
    /// for a secondary probe inside the same logical operation.
    pub fn get(&mut self, key: &[u8]) -> Option<CacheEntry> {
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.referenced = true;
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                Some(slot.entry)
            }
            None => {
                if let Some(m) = &self.metrics {
                    m.misses.inc();
                }
                None
            }
        }
    }

    /// Looks `key` up and refreshes its recency **without** counting a hit
    /// or miss — for the second probe of an operation that already counted
    /// its lookup (e.g. the slow-path `locate_slot` after a rejected
    /// speculation), so `hits + misses` stays one-per-lookup.
    pub fn peek(&mut self, key: &[u8]) -> Option<CacheEntry> {
        self.map.get_mut(key).map(|slot| {
            slot.referenced = true;
            slot.entry
        })
    }

    /// Inserts (or refreshes) `key`. Fills ride existing read batches, so
    /// this never touches the fabric; it may evict one cold entry to stay
    /// within capacity. With `capacity == 0` this is a no-op.
    pub fn insert(&mut self, key: Vec<u8>, entry: CacheEntry) {
        if self.capacity == 0 {
            return;
        }
        if let Some(slot) = self.map.get_mut(&key) {
            slot.entry = entry;
            slot.referenced = true;
            return;
        }
        while self.map.len() >= self.capacity {
            self.evict_one();
        }
        self.map.insert(
            key,
            Slot {
                entry,
                referenced: true,
            },
        );
    }

    /// Drops `key`, counting an invalidation if it was present. Every
    /// targeted removal is a correctness-motivated invalidation (CAS
    /// failure, fence bounce, verify mismatch) — capacity evictions go
    /// through the internal sweep instead.
    pub fn invalidate(&mut self, key: &[u8]) -> bool {
        let hit = self.map.remove(key).is_some();
        if hit {
            if let Some(m) = &self.metrics {
                m.invalidations.inc();
            }
        }
        hit
    }

    /// Drops every entry `stale` returns true for, counting each as an
    /// invalidation. Iterates in key order (deterministic). Used by the
    /// placement refresh (epoch / retirement purge) and recovery
    /// notifications.
    pub fn purge(&mut self, mut stale: impl FnMut(&[u8], &CacheEntry) -> bool) {
        let before = self.map.len();
        self.map.retain(|k, slot| !stale(k, &slot.entry));
        let dropped = (before - self.map.len()) as u64;
        if dropped > 0 {
            if let Some(m) = &self.metrics {
                m.invalidations.add(dropped);
            }
        }
    }

    /// Drops everything without touching the invalidation counter (tuning
    /// switch-off / factor analysis, not a protocol event).
    pub fn clear(&mut self) {
        self.map.clear();
        self.hand = None;
    }

    /// Evicts exactly one entry by the CLOCK sweep: advance the hand in
    /// key order (wrapping), clear reference bits as second chances, and
    /// remove the first unreferenced entry met. Terminates within two laps
    /// — after one full lap every bit is clear.
    fn evict_one(&mut self) {
        if self.map.is_empty() {
            return;
        }
        loop {
            let key = match &self.hand {
                Some(h) => self
                    .map
                    .range::<[u8], _>((
                        std::ops::Bound::Included(h.as_slice()),
                        std::ops::Bound::Unbounded,
                    ))
                    .next()
                    .map(|(k, _)| k.clone()),
                None => None,
            }
            .or_else(|| self.map.keys().next().cloned())
            .expect("map is non-empty");
            // Position the hand just past the current key: its successor,
            // expressed as the smallest key strictly greater (key + 0x00).
            let mut next = key.clone();
            next.push(0);
            self.hand = Some(next);
            let slot = self.map.get_mut(&key).expect("key just ranged");
            if slot.referenced {
                slot.referenced = false;
            } else {
                self.map.remove(&key);
                if let Some(m) = &self.metrics {
                    m.evictions.inc();
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_rdma::NodeId;

    fn entry(tag: u64) -> CacheEntry {
        CacheEntry {
            slot_addr: GlobalAddr::new(NodeId(0), tag),
            atomic: SlotAtomic::default(),
            meta: SlotMeta::default(),
            tombstone: false,
            fill_epoch: tag,
        }
    }

    fn key(i: usize) -> Vec<u8> {
        format!("key-{i:04}").into_bytes()
    }

    #[test]
    fn bound_holds_under_churn() {
        let mut c = IndexCache::new(8, None);
        for i in 0..1000 {
            c.insert(key(i), entry(i as u64));
            assert!(c.len() <= 8, "cache exceeded bound at insert {i}");
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = IndexCache::new(0, None);
        c.insert(key(1), entry(1));
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let mut c = IndexCache::new(4, None);
        for i in 0..4 {
            c.insert(key(i), entry(i as u64));
        }
        // Keep key(1) hot through heavy churn. (key(0) sits exactly where
        // the clock hand starts, and CLOCK's first all-referenced sweep
        // legitimately evicts the hand position — so the guarantee under
        // test is "an entry re-referenced after the hand passes survives",
        // demonstrated on a key that is not the initial hand position.)
        for i in 4..20 {
            assert!(c.get(&key(1)).is_some(), "hot key evicted at round {i}");
            c.insert(key(i), entry(i as u64));
        }
        assert!(c.contains(&key(1)), "hot key should survive the churn");
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let run = || {
            let mut c = IndexCache::new(4, None);
            for i in 0..32 {
                c.insert(key(i), entry(i as u64));
            }
            c.map.keys().cloned().collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn counters_track_hits_misses_evictions_invalidations() {
        let reg = Registry::new();
        let mut c = IndexCache::new(2, Some(&reg));
        c.insert(key(0), entry(0));
        c.insert(key(1), entry(1));
        assert!(c.get(&key(0)).is_some());
        assert!(c.get(&key(9)).is_none());
        c.insert(key(2), entry(2)); // evicts one
        assert!(c.invalidate(&key(2)));
        assert!(!c.invalidate(&key(2))); // absent: not counted
        c.purge(|_, _| true);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("client.cache.hits"), Some(1));
        assert_eq!(snap.counter("client.cache.misses"), Some(1));
        assert_eq!(snap.counter("client.cache.evictions"), Some(1));
        // invalidate(key2) + purge of the single remaining entry.
        assert_eq!(snap.counter("client.cache.invalidations"), Some(2));
    }

    #[test]
    fn peek_refreshes_recency_without_counting() {
        let reg = Registry::new();
        let mut c = IndexCache::new(2, Some(&reg));
        c.insert(key(0), entry(0));
        assert!(c.peek(&key(0)).is_some());
        assert!(c.peek(&key(5)).is_none());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("client.cache.hits"), Some(0));
        assert_eq!(snap.counter("client.cache.misses"), Some(0));
    }

    #[test]
    fn shrinking_capacity_evicts_down() {
        let mut c = IndexCache::new(8, None);
        for i in 0..8 {
            c.insert(key(i), entry(i as u64));
        }
        c.set_capacity(3);
        assert_eq!(c.len(), 3);
        c.insert(key(100), entry(100));
        assert_eq!(c.len(), 3);
    }
}
