//! Aceso: a memory-disaggregated KV store with hybrid fault tolerance.
//!
//! This crate is the paper's primary contribution (§3): a fully
//! disaggregated KV store whose index is protected by **differential
//! checkpointing with versioning** and whose KV pairs are protected by
//! **offline X-Code erasure coding with delta-based space reclamation**,
//! plus **tiered recovery** that brings the store back within the index
//! tier's recovery time.
//!
//! Map from the paper to modules:
//!
//! | Paper | Module |
//! |---|---|
//! | §3.1 overview, memory areas | [`config`] |
//! | §3.2.2 slot versioning (Algorithm 1), client ops | [`client`] |
//! | §3.5.1 bounded client index cache | [`cache`] |
//! | KV pair / delta wire format, Write Versions (§3.4.2) | [`kv`] |
//! | §3.2.1/§3.2.3 differential checkpointing + Index Version | [`ckpt`] |
//! | §3.3 offline erasure coding, §3.3.3 reclamation (server side) | [`server`] |
//! | §3.4 failure handling, tiered recovery | [`recovery`] |
//! | client↔server RPC protocol | [`proto`] |
//! | top-level orchestration (launch, kill, recover) | [`store`] |
//! | elastic membership (online MN add/drain) | [`placement`], [`elastic`] |
//! | §5 Table 3 strategy comparison seam | [`engine`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod ckpt;
pub mod client;
pub mod config;
pub mod elastic;
pub mod engine;
pub mod kv;
pub mod placement;
pub mod proto;
pub mod recovery;
pub mod scrub;
pub mod server;
pub mod store;

pub use cache::{CacheEntry, IndexCache};
pub use client::{AcesoClient, ModelMutation};
pub use config::{AcesoConfig, ClientTuning, MemoryMap};
pub use elastic::{ElasticReport, ElasticStep, Migration};
pub use engine::{AcesoEngine, FtClient, FtEngine, FtError, FtResult, RecoverySummary, SpaceReport};
pub use placement::{ElasticKind, MigrationView, PlacementMap, PlacementSnapshot};
pub use recovery::{
    recover_cn, recover_mixed, recover_mn, recover_mn_with, CnRecoveryReport, RecoveryReport,
};
pub use scrub::{scrub, ScrubReport};
pub use store::{AcesoStore, MemoryUsage};

/// Errors surfaced by the store API.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// Fabric-level failure (node unreachable, RPC closed…).
    Rdma(aceso_rdma::RdmaError),
    /// The key was not found (UPDATE/DELETE of a missing key).
    NotFound,
    /// The index partition has no free slot for this key's buckets.
    IndexFull,
    /// The memory pool has no free block of the required size class.
    OutOfBlocks,
    /// The key or value exceeds the supported size envelope.
    TooLarge,
    /// Commit kept failing beyond the retry budget (extreme contention or
    /// an in-progress recovery).
    RetriesExhausted,
    /// The store is shutting down.
    Shutdown,
}

impl From<aceso_rdma::RdmaError> for StoreError {
    fn from(e: aceso_rdma::RdmaError) -> Self {
        StoreError::Rdma(e)
    }
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Rdma(e) => write!(f, "fabric: {e}"),
            StoreError::NotFound => write!(f, "key not found"),
            StoreError::IndexFull => write!(f, "index bucket group full"),
            StoreError::OutOfBlocks => write!(f, "memory pool exhausted"),
            StoreError::TooLarge => write!(f, "kv exceeds size envelope"),
            StoreError::RetriesExhausted => write!(f, "commit retries exhausted"),
            StoreError::Shutdown => write!(f, "store shut down"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Crate-wide result type.
pub type Result<T> = core::result::Result<T, StoreError>;
