//! `aceso-rt`: a single-thread coroutine runtime for the Aceso client.
//!
//! The paper's testbed saturates its NICs with 184 client threads running
//! *coroutines* — each thread keeps many requests in flight, suspending an
//! op at every fabric round-trip and resuming another. This crate is the
//! reproduction's stand-in: a dependency-free, hand-rolled futures executor
//! (no tokio; the build environment is offline) in which **one OS thread
//! multiplexes hundreds of in-flight client operations** over the simulated
//! fabric in `aceso-rdma`.
//!
//! The executor is deliberately minimal:
//!
//! * a slab of tasks (`Pin<Box<dyn Future>>`) with a free list,
//! * one [`std::task::Waker`] per task (built from [`std::task::Wake`],
//!   no unsafe) with a de-duplicating `queued` bit,
//! * a shared ready queue drained by [`Executor::run_until_idle`], which
//!   calls a caller-supplied *driver* closure whenever every live task is
//!   suspended — in Aceso that closure advances the simulated completion
//!   queue ([`aceso-rdma`'s `SimCq`]) to its next completion deadline.
//!
//! There is no timer wheel, no I/O reactor and no work stealing: the only
//! event source is the driver closure, which keeps schedules deterministic
//! — the same seed replays the identical interleaving, which the chaos
//! harness and the happens-before sanitizer rely on.
//!
//! # Example
//!
//! ```
//! use aceso_rt::Executor;
//!
//! let mut ex = Executor::new();
//! let h = ex.spawn(async { 6 * 7 });
//! // No external events needed: the driver closure is never consulted
//! // for tasks that complete without suspending.
//! assert_eq!(ex.run_until_idle(|| false), 0);
//! assert_eq!(h.take(), Some(42));
//! ```
//!
//! Metrics: when built with [`Executor::with_obs`], the executor records
//! `rt.tasks_spawned`, `rt.tasks_finished`, `rt.polls` and `rt.wakeups`
//! counters plus an `rt.inflight` gauge into the supplied
//! [`aceso_obs::Obs`] recorder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aceso_obs::{Counter, Gauge, Obs};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Identity of a spawned task: slab index plus a generation counter, so a
/// stale id (finished or cancelled task whose slot was reused) can never
/// cancel or wake its successor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskId {
    index: usize,
    gen: u64,
}

/// State shared between the executor and every task waker.
struct Shared {
    /// Task ids that have been woken and await a poll.
    ready: Mutex<VecDeque<TaskId>>,
    /// Wakeups delivered since the executor last flushed metrics.
    wakeups: AtomicU64,
}

/// Per-task waker: pushes the task id onto the shared ready queue.
///
/// The `queued` bit de-duplicates wakes — N wakes between two polls cost
/// one queue entry — and makes wake-before-poll safe: a task spawned (or
/// woken while queued) is simply not re-enqueued.
struct TaskWaker {
    shared: Arc<Shared>,
    id: TaskId,
    queued: AtomicBool,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            self.shared.wakeups.fetch_add(1, Ordering::Relaxed);
            self.shared.ready.lock().unwrap().push_back(self.id);
        }
    }
}

/// A live task: the wrapped future plus its dedicated waker.
struct Task {
    fut: Pin<Box<dyn Future<Output = ()>>>,
    waker: Arc<TaskWaker>,
    gen: u64,
}

/// Handle to a spawned task's eventual output.
///
/// The executor is single-threaded, so the handle is a plain shared cell:
/// poll it with [`JoinHandle::take`] after [`Executor::run_until_idle`]
/// returns (or between calls). A cancelled task never fills its cell.
pub struct JoinHandle<T> {
    cell: Rc<RefCell<Option<T>>>,
    id: TaskId,
}

impl<T> JoinHandle<T> {
    /// The spawned task's id (for [`Executor::cancel`]).
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Whether the task has completed and its output is available.
    pub fn is_finished(&self) -> bool {
        self.cell.borrow().is_some()
    }

    /// Takes the task's output if it has completed. Returns `None` while
    /// the task is still in flight, after the output was already taken,
    /// or if the task was cancelled.
    pub fn take(&self) -> Option<T> {
        self.cell.borrow_mut().take()
    }
}

/// Pre-resolved metric handles (see crate docs for the name glossary).
struct Metrics {
    spawned: Counter,
    finished: Counter,
    polls: Counter,
    wakeups: Counter,
    inflight: Gauge,
}

/// A single-thread futures executor with an external event driver.
///
/// Tasks are spawned with [`Executor::spawn`] and run with
/// [`Executor::run_until_idle`]; the driver closure passed to the latter
/// is the executor's only event source (see crate docs).
pub struct Executor {
    slots: Vec<Option<Task>>,
    free: Vec<usize>,
    shared: Arc<Shared>,
    next_gen: u64,
    inflight: usize,
    peak: usize,
    metrics: Option<Metrics>,
}

impl Executor {
    /// A fresh executor with metrics recording disabled.
    pub fn new() -> Self {
        Self::with_obs(Obs::off())
    }

    /// A fresh executor recording `rt.*` metrics into `obs` (no-op when
    /// `obs` is [`Obs::off`]).
    pub fn with_obs(obs: Obs) -> Self {
        let metrics = obs.registry().map(|r| Metrics {
            spawned: r.counter("rt.tasks_spawned"),
            finished: r.counter("rt.tasks_finished"),
            polls: r.counter("rt.polls"),
            wakeups: r.counter("rt.wakeups"),
            inflight: r.gauge("rt.inflight"),
        });
        Executor {
            slots: Vec::new(),
            free: Vec::new(),
            shared: Arc::new(Shared {
                ready: Mutex::new(VecDeque::new()),
                wakeups: AtomicU64::new(0),
            }),
            next_gen: 0,
            inflight: 0,
            peak: 0,
            metrics,
        }
    }

    /// Spawns `fut` and returns a handle to its output.
    ///
    /// The task is queued for its first poll immediately; nothing runs
    /// until [`Executor::run_until_idle`].
    ///
    /// ```
    /// let mut ex = aceso_rt::Executor::new();
    /// let h = ex.spawn(async { "done" });
    /// assert!(!h.is_finished());
    /// ex.run_until_idle(|| false);
    /// assert_eq!(h.take(), Some("done"));
    /// ```
    pub fn spawn<T: 'static>(&mut self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let cell = Rc::new(RefCell::new(None));
        let out = Rc::clone(&cell);
        let wrapped = async move {
            *out.borrow_mut() = Some(fut.await);
        };
        let index = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        self.next_gen += 1;
        let id = TaskId {
            index,
            gen: self.next_gen,
        };
        let waker = Arc::new(TaskWaker {
            shared: Arc::clone(&self.shared),
            id,
            // Spawned tasks start queued: a wake delivered before the
            // first poll is already satisfied (wake-before-poll).
            queued: AtomicBool::new(true),
        });
        self.slots[index] = Some(Task {
            fut: Box::pin(wrapped),
            waker,
            gen: id.gen,
        });
        self.shared.ready.lock().unwrap().push_back(id);
        self.inflight += 1;
        self.peak = self.peak.max(self.inflight);
        if let Some(m) = &self.metrics {
            m.spawned.inc();
            m.inflight.set(self.inflight as f64);
        }
        JoinHandle { cell, id }
    }

    /// Runs until every task has completed, or until the executor is
    /// *stuck*: all live tasks suspended, nothing ready, and the driver
    /// closure returned `false` (no more external events).
    ///
    /// `drive` is called whenever the ready queue is empty but tasks are
    /// still in flight; it should deliver one batch of external events
    /// (e.g. advance a simulated completion queue) and return whether it
    /// made progress. Returns the number of tasks still in flight — `0`
    /// means the executor ran to idle.
    pub fn run_until_idle(&mut self, mut drive: impl FnMut() -> bool) -> usize {
        loop {
            loop {
                let id = self.shared.ready.lock().unwrap().pop_front();
                let Some(id) = id else { break };
                self.poll_task(id);
            }
            self.flush_wakeups();
            if self.inflight == 0 {
                return 0;
            }
            if !drive() {
                return self.inflight;
            }
        }
    }

    /// Cancels a task: its future is dropped in place (running any
    /// destructors — locks released, guards dropped), its output cell is
    /// never filled. Returns whether the task was still live.
    pub fn cancel(&mut self, id: TaskId) -> bool {
        let live = self
            .slots
            .get(id.index)
            .and_then(|s| s.as_ref())
            .is_some_and(|t| t.gen == id.gen);
        if !live {
            return false;
        }
        self.slots[id.index] = None;
        self.free.push(id.index);
        self.inflight -= 1;
        if let Some(m) = &self.metrics {
            m.inflight.set(self.inflight as f64);
        }
        true
    }

    /// Number of tasks currently in flight (spawned, not yet finished or
    /// cancelled).
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// High-water mark of concurrently in-flight tasks over the
    /// executor's lifetime.
    pub fn peak_inflight(&self) -> usize {
        self.peak
    }

    fn poll_task(&mut self, id: TaskId) {
        let Some(slot) = self.slots.get_mut(id.index) else {
            return;
        };
        let Some(task) = slot.take() else { return };
        if task.gen != id.gen {
            // Stale wake for a finished/cancelled predecessor.
            *slot = Some(task);
            return;
        }
        let mut task = task;
        // Clear the queued bit *before* polling so a wake delivered
        // during the poll re-enqueues the task.
        task.waker.queued.store(false, Ordering::Release);
        let waker = Waker::from(Arc::clone(&task.waker));
        let mut cx = Context::from_waker(&waker);
        if let Some(m) = &self.metrics {
            m.polls.inc();
        }
        match task.fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.free.push(id.index);
                self.inflight -= 1;
                if let Some(m) = &self.metrics {
                    m.finished.inc();
                    m.inflight.set(self.inflight as f64);
                }
            }
            Poll::Pending => {
                self.slots[id.index] = Some(task);
            }
        }
    }

    fn flush_wakeups(&self) {
        let n = self.shared.wakeups.swap(0, Ordering::Relaxed);
        if n > 0 {
            if let Some(m) = &self.metrics {
                m.wakeups.add(n);
            }
        }
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

/// A future that suspends exactly once, waking itself immediately — the
/// cooperative yield point.
///
/// ```
/// let mut ex = aceso_rt::Executor::new();
/// let h = ex.spawn(async {
///     aceso_rt::yield_now().await;
///     7
/// });
/// assert_eq!(ex.run_until_idle(|| false), 0);
/// assert_eq!(h.take(), Some(7));
/// ```
pub fn yield_now() -> impl Future<Output = ()> {
    struct YieldNow(bool);
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_obs::Registry;

    /// A mock completion queue: futures park here and are released one at
    /// a time by the test's driver closure, mimicking `SimCq`.
    #[derive(Default)]
    struct MockCq {
        parked: RefCell<VecDeque<(Rc<RefCell<bool>>, Waker)>>,
    }

    impl MockCq {
        fn wait(self: &Rc<Self>) -> impl Future<Output = ()> {
            struct Wait {
                cq: Rc<MockCq>,
                done: Rc<RefCell<bool>>,
                parked: bool,
            }
            impl Future for Wait {
                type Output = ();
                fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                    if *self.done.borrow() {
                        return Poll::Ready(());
                    }
                    if !self.parked {
                        self.parked = true;
                        self.cq
                            .parked
                            .borrow_mut()
                            .push_back((Rc::clone(&self.done), cx.waker().clone()));
                    }
                    Poll::Pending
                }
            }
            Wait {
                cq: Rc::clone(self),
                done: Rc::new(RefCell::new(false)),
                parked: false,
            }
        }

        /// Completes the oldest parked waiter; returns whether one existed.
        fn complete_next(&self) -> bool {
            match self.parked.borrow_mut().pop_front() {
                Some((done, waker)) => {
                    *done.borrow_mut() = true;
                    waker.wake();
                    true
                }
                None => false,
            }
        }
    }

    #[test]
    fn run_until_idle_terminates_without_events() {
        let mut ex = Executor::new();
        for i in 0..10 {
            ex.spawn(async move {
                yield_now().await;
                i * 2
            });
        }
        assert_eq!(ex.inflight(), 10);
        assert_eq!(ex.run_until_idle(|| false), 0);
        assert_eq!(ex.inflight(), 0);
        assert_eq!(ex.peak_inflight(), 10);
    }

    #[test]
    fn wake_before_poll_is_not_lost() {
        // The waker fires before the executor ever polls the future: the
        // task must still run to completion (spawned tasks start queued,
        // and a double wake folds into one queue entry).
        let mut ex = Executor::new();
        let external: Rc<RefCell<Option<Waker>>> = Rc::new(RefCell::new(None));
        let ext2 = Rc::clone(&external);
        let fired = Rc::new(RefCell::new(false));
        let fired2 = Rc::clone(&fired);
        struct Once {
            slot: Rc<RefCell<Option<Waker>>>,
            fired: Rc<RefCell<bool>>,
        }
        impl Future for Once {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if *self.fired.borrow() {
                    return Poll::Ready(());
                }
                *self.slot.borrow_mut() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
        let h = ex.spawn(Once {
            slot: ext2,
            fired: fired2,
        });
        let drove = RefCell::new(false);
        let stuck = ex.run_until_idle(|| {
            // First drive call: the task is suspended. Fire the external
            // wake and also wake it a second time — the duplicate must
            // coalesce rather than double-poll or panic.
            if *drove.borrow() {
                return false;
            }
            *drove.borrow_mut() = true;
            *fired.borrow_mut() = true;
            let w = external.borrow().clone().unwrap();
            w.wake_by_ref();
            w.wake();
            true
        });
        assert_eq!(stuck, 0);
        assert!(h.is_finished());
    }

    #[test]
    fn drop_mid_suspend_cancels_cleanly() {
        struct Guard(Rc<RefCell<bool>>);
        impl Drop for Guard {
            fn drop(&mut self) {
                *self.0.borrow_mut() = true;
            }
        }
        let cq: Rc<MockCq> = Rc::default();
        let dropped = Rc::new(RefCell::new(false));
        let mut ex = Executor::new();
        let g = Guard(Rc::clone(&dropped));
        let cq2 = Rc::clone(&cq);
        let h = ex.spawn(async move {
            let _g = g;
            cq2.wait().await; // suspends forever; the guard lives across it
            unreachable!("completion never delivered");
        });
        // One pass: the task parks on the mock CQ.
        assert_eq!(ex.run_until_idle(|| false), 1);
        assert!(!*dropped.borrow());
        // Cancel while suspended: destructor must run, slot must free.
        assert!(ex.cancel(h.id()));
        assert!(*dropped.borrow());
        assert_eq!(ex.inflight(), 0);
        assert!(!h.is_finished());
        // A second cancel (stale id) is a no-op, as is its late wake.
        assert!(!ex.cancel(h.id()));
        assert!(cq.complete_next());
        assert_eq!(ex.run_until_idle(|| false), 0);
    }

    #[test]
    fn two_task_ping_pong_over_mock_cq() {
        let cq: Rc<MockCq> = Rc::default();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let mut ex = Executor::new();
        for name in ["ping", "pong"] {
            let cq = Rc::clone(&cq);
            let log = Rc::clone(&log);
            ex.spawn(async move {
                for _ in 0..3 {
                    cq.wait().await;
                    log.borrow_mut().push(name);
                }
            });
        }
        // Driver: release one completion per call, strictly alternating
        // the two tasks since the CQ is FIFO.
        assert_eq!(ex.run_until_idle(|| cq.complete_next()), 0);
        assert_eq!(
            *log.borrow(),
            ["ping", "pong", "ping", "pong", "ping", "pong"]
        );
    }

    #[test]
    fn slab_reuses_slots_and_generations_protect_ids() {
        let mut ex = Executor::new();
        let a = ex.spawn(async {});
        ex.run_until_idle(|| false);
        let b = ex.spawn(async { yield_now().await });
        // Same slab slot, different generation: the stale id must not
        // cancel the new occupant.
        assert!(!ex.cancel(a.id()));
        assert_eq!(ex.inflight(), 1);
        assert!(ex.cancel(b.id()));
    }

    #[test]
    fn metrics_record_spawn_poll_wake_finish() {
        let reg = Registry::new();
        let mut ex = Executor::with_obs(Obs::on(reg.clone()));
        for _ in 0..4 {
            ex.spawn(async {
                yield_now().await;
            });
        }
        assert_eq!(ex.run_until_idle(|| false), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("rt.tasks_spawned"), Some(4));
        assert_eq!(snap.counter("rt.tasks_finished"), Some(4));
        // Each task polls twice (initial + after yield) and wakes once.
        assert_eq!(snap.counter("rt.polls"), Some(8));
        assert_eq!(snap.counter("rt.wakeups"), Some(4));
        assert_eq!(snap.gauge("rt.inflight"), Some(0.0));
    }
}
