//! Concurrency tests of the remote index: CAS exclusivity on slots and
//! snapshot consistency under concurrent commits.

use aceso_index::{fingerprint, IndexLayout, RemoteIndex, SlotAtomic};
use aceso_rdma::{Cluster, ClusterConfig, CostModel, NodeId};
use std::sync::Arc;

fn setup(groups: u64) -> (Arc<Cluster>, RemoteIndex) {
    let cluster = Cluster::new(ClusterConfig {
        num_mns: 1,
        region_len: 8 << 20,
        cost: CostModel::default(),
    });
    (
        cluster.clone(),
        RemoteIndex::new(NodeId(0), IndexLayout::new(0, groups)),
    )
}

/// Racing inserts into the same empty slot: exactly one CAS wins.
#[test]
fn concurrent_insert_cas_has_one_winner() {
    let (cluster, idx) = setup(4);
    let addr = idx.slot_addr(0, 3);
    let winners: usize = (0..8)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let dm = cluster.client();
                let new = SlotAtomic {
                    fp: 10 + t as u8,
                    addr48: 64 * (t as u64 + 1),
                    ver: 1,
                };
                let prev = idx
                    .cas_atomic(&dm, addr, SlotAtomic::default(), new)
                    .unwrap();
                usize::from(prev.is_empty())
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .sum();
    assert_eq!(winners, 1);
    // The slot holds exactly one of the attempted values.
    let dm = cluster.client();
    let s = idx.read_slot(&dm, addr).unwrap();
    assert!(s.atomic.fp >= 10 && s.atomic.fp < 18);
    assert_eq!(s.atomic.addr48 % 64, 0);
}

/// Snapshots taken during a CAS storm contain only values that were
/// actually written (no torn words).
#[test]
fn snapshot_never_tears_under_cas_storm() {
    let (cluster, idx) = setup(8);
    let addr = idx.slot_addr(2, 5);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let dm = cluster.client();
            let mut cur = SlotAtomic::default();
            for i in 1..50_000u64 {
                // fp and addr move in lockstep: fp = i mod 200 + 1,
                // addr units = same i — a torn snapshot would break the
                // relation.
                let next = SlotAtomic {
                    fp: (i % 200 + 1) as u8,
                    addr48: i,
                    ver: i as u8,
                };
                let prev = idx.cas_atomic(&dm, addr, cur, next).unwrap();
                assert_eq!(prev, cur, "single writer must never lose its CAS");
                cur = next;
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
            }
        })
    };
    let region = cluster.node(NodeId(0)).unwrap().region.clone();
    for _ in 0..200 {
        let snap = idx.snapshot(&region);
        for (_, _, atomic, _) in idx.slots_in_snapshot(&snap) {
            if atomic.is_empty() {
                continue;
            }
            assert_eq!(
                atomic.fp as u64,
                atomic.addr48 % 200 + 1,
                "snapshot captured a torn slot: {atomic:?}"
            );
            assert_eq!(atomic.ver, atomic.addr48 as u8);
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

/// Scans are stable under concurrent inserts elsewhere in the table.
#[test]
fn scan_survives_concurrent_population() {
    let (cluster, idx) = setup(64);
    let key = b"stable-key";
    let fp = fingerprint(key);
    let dm = cluster.client();
    let target = idx.scan(&dm, key, fp).unwrap().empties[0];
    idx.cas_atomic(
        &dm,
        target,
        SlotAtomic::default(),
        SlotAtomic {
            fp,
            addr48: 64,
            ver: 1,
        },
    )
    .unwrap();

    let fill = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            let dm = cluster.client();
            for i in 0..3000u32 {
                let k = format!("filler-{i}");
                let kfp = fingerprint(k.as_bytes());
                let scan = idx.scan(&dm, k.as_bytes(), kfp).unwrap();
                if let Some(&slot) = scan.empties.first() {
                    let _ = idx.cas_atomic(
                        &dm,
                        slot,
                        SlotAtomic::default(),
                        SlotAtomic {
                            fp: kfp,
                            addr48: 64 * (i as u64 + 2),
                            ver: 1,
                        },
                    );
                }
            }
        })
    };
    for _ in 0..2000 {
        let scan = idx.scan(&dm, key, fp).unwrap();
        assert!(
            scan.matches.iter().any(|m| m.atomic.addr48 == 64),
            "the committed slot must stay visible"
        );
    }
    fill.join().unwrap();
}
