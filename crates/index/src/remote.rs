//! Client- and server-side operations on one MN's index partition.
//!
//! Clients touch the index exclusively through one-sided verbs: a SEARCH
//! reads the key's two combined buckets with one doorbell batch; commits CAS
//! the slot's Atomic word; epoch rollovers CAS the Meta word (Algorithm 1
//! lives in `aceso-core`, built on these primitives). The MN server
//! additionally gets zero-cost local accessors used by checkpointing and
//! recovery.

use crate::layout::{IndexLayout, COMBINED_BYTES, COMBINED_SLOTS};
use crate::slot::{SlotAtomic, SlotMeta, SLOT_BYTES};
use aceso_rdma::{DmClient, GlobalAddr, NodeId, Region, Result};

/// A decoded slot plus the global address of its Atomic word.
#[derive(Clone, Copy, Debug)]
pub struct SlotRef {
    /// Global address of the slot's Atomic word.
    pub addr: GlobalAddr,
    /// Decoded Atomic half.
    pub atomic: SlotAtomic,
    /// Decoded Meta half.
    pub meta: SlotMeta,
}

impl SlotRef {
    /// Global address of the slot's Meta word.
    pub fn meta_addr(&self) -> GlobalAddr {
        self.addr.add(8)
    }
}

/// Result of scanning a key's two combined buckets.
#[derive(Clone, Debug, Default)]
pub struct BucketScan {
    /// Slots whose fingerprint matches the key, in deterministic scan order
    /// (callers must still verify the full key against the KV pair).
    pub matches: Vec<SlotRef>,
    /// Empty slots, in scan order (insert targets).
    pub empties: Vec<GlobalAddr>,
}

/// One MN's index partition.
#[derive(Clone, Copy, Debug)]
pub struct RemoteIndex {
    /// The node holding this partition.
    pub node: NodeId,
    /// Its geometry.
    pub layout: IndexLayout,
}

impl RemoteIndex {
    /// Creates a handle for the partition on `node` with `layout`.
    pub fn new(node: NodeId, layout: IndexLayout) -> Self {
        RemoteIndex { node, layout }
    }

    /// Reads the key's two combined buckets (one doorbell batch of two
    /// `RDMA_READ`s) and classifies their slots.
    pub fn scan(&self, dm: &DmClient, key: &[u8], fp: u8) -> Result<BucketScan> {
        let coords = self.layout.buckets_for(key);
        let mut bufs: [Vec<u8>; 2] = [Vec::new(), Vec::new()];
        dm.batch(|dm| -> Result<()> {
            for (i, &(g, c)) in coords.iter().enumerate() {
                let off = self.layout.combined_offset(g, c);
                bufs[i] = dm.read_vec(GlobalAddr::new(self.node, off), COMBINED_BYTES as usize)?;
            }
            Ok(())
        })?;

        let mut scan = BucketScan::default();
        let mut seen = Vec::with_capacity(4);
        for (i, &(g, c)) in coords.iter().enumerate() {
            for s in 0..COMBINED_SLOTS {
                let off = self.layout.slot_offset(g, c, s);
                if seen.contains(&off) {
                    continue; // Shared overflow bucket when both hashes hit one group.
                }
                seen.push(off);
                let b = &bufs[i][(s * SLOT_BYTES) as usize..((s + 1) * SLOT_BYTES) as usize];
                let atomic = SlotAtomic::decode(u64::from_le_bytes(b[..8].try_into().unwrap()));
                let meta = SlotMeta::decode(u64::from_le_bytes(b[8..].try_into().unwrap()));
                let addr = GlobalAddr::new(self.node, off);
                if atomic.is_empty() {
                    scan.empties.push(addr);
                } else if atomic.fp == fp {
                    scan.matches.push(SlotRef { addr, atomic, meta });
                }
            }
        }
        Ok(scan)
    }

    /// Re-reads one slot (16 B `RDMA_READ`).
    pub fn read_slot(&self, dm: &DmClient, addr: GlobalAddr) -> Result<SlotRef> {
        let b = dm.read_vec(addr, SLOT_BYTES as usize)?;
        Ok(SlotRef {
            addr,
            atomic: SlotAtomic::decode(u64::from_le_bytes(b[..8].try_into().unwrap())),
            meta: SlotMeta::decode(u64::from_le_bytes(b[8..].try_into().unwrap())),
        })
    }

    /// CAS on a slot's Atomic word. Returns the observed previous value;
    /// the commit succeeded iff it equals `old`.
    pub fn cas_atomic(
        &self,
        dm: &DmClient,
        addr: GlobalAddr,
        old: SlotAtomic,
        new: SlotAtomic,
    ) -> Result<SlotAtomic> {
        Ok(SlotAtomic::decode(dm.cas(
            addr,
            old.encode(),
            new.encode(),
        )?))
    }

    /// CAS on a slot's Meta word (epoch lock protocol). `addr` is the
    /// *Atomic* word's address; the Meta word sits 8 bytes past it.
    pub fn cas_meta(
        &self,
        dm: &DmClient,
        addr: GlobalAddr,
        old: SlotMeta,
        new: SlotMeta,
    ) -> Result<SlotMeta> {
        Ok(SlotMeta::decode(dm.cas(
            addr.add(8),
            old.encode(),
            new.encode(),
        )?))
    }

    /// Overwrites a slot's Meta word with a plain 8 B write (used for the
    /// `len` refresh when a client detects a stale length, §3.2.2).
    pub fn write_meta(&self, dm: &DmClient, addr: GlobalAddr, meta: SlotMeta) -> Result<()> {
        dm.write_inline(addr.add(8), &meta.encode().to_le_bytes())
    }

    /// Reads the partition's Index Version word.
    pub fn index_version(&self, dm: &DmClient) -> Result<u64> {
        dm.read_u64(GlobalAddr::new(
            self.node,
            self.layout.index_version_offset(),
        ))
    }

    // ---- Server-side (local, zero network cost) accessors. ----

    /// Local read of the Index Version by the MN's own server.
    pub fn local_index_version(&self, region: &Region) -> u64 {
        region
            .load64(self.layout.index_version_offset())
            .expect("index version in range")
    }

    /// Local bump of the Index Version after a checkpoint round (§3.2.3).
    pub fn local_set_index_version(&self, region: &Region, v: u64) {
        region
            .store64(self.layout.index_version_offset(), v)
            .expect("index version in range");
    }

    /// Snapshot of the raw bucket bytes (excluding the Index Version word).
    ///
    /// Concurrent `RDMA_CAS` commits stay word-atomic against this copy, so
    /// the snapshot never contains a torn Atomic or Meta word — the property
    /// §3.2.1 derives from PCIe read-modify-write semantics.
    pub fn snapshot(&self, region: &Region) -> Vec<u8> {
        region
            .read_vec(self.layout.base, (self.layout.num_groups * 384) as usize)
            .expect("index area in range")
    }

    /// Writes raw bucket bytes back (recovery restoring a checkpoint).
    pub fn restore(&self, region: &Region, bytes: &[u8]) {
        assert_eq!(bytes.len() as u64, self.layout.num_groups * 384);
        region
            .write(self.layout.base, bytes)
            .expect("index area in range");
    }

    /// Iterates every slot in a raw snapshot, yielding
    /// `(group, slot_in_group, SlotAtomic, SlotMeta)`.
    pub fn slots_in_snapshot<'a>(
        &self,
        snap: &'a [u8],
    ) -> impl Iterator<Item = (u64, u64, SlotAtomic, SlotMeta)> + 'a {
        let groups = self.layout.num_groups;
        (0..groups).flat_map(move |g| {
            (0..24u64).map(move |s| {
                let off = (g * 384 + s * SLOT_BYTES) as usize;
                let a =
                    SlotAtomic::decode(u64::from_le_bytes(snap[off..off + 8].try_into().unwrap()));
                let m = SlotMeta::decode(u64::from_le_bytes(
                    snap[off + 8..off + 16].try_into().unwrap(),
                ));
                (g, s, a, m)
            })
        })
    }

    /// Address of the slot at `(group, slot_in_group)` (inverse of the
    /// coordinates produced by [`RemoteIndex::slots_in_snapshot`]).
    pub fn slot_addr(&self, group: u64, slot_in_group: u64) -> GlobalAddr {
        GlobalAddr::new(
            self.node,
            self.layout.base + group * 384 + slot_in_group * SLOT_BYTES,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fingerprint;
    use aceso_rdma::{Cluster, ClusterConfig, CostModel};
    use std::sync::Arc;

    fn setup() -> (Arc<Cluster>, RemoteIndex) {
        let cluster = Cluster::new(ClusterConfig {
            num_mns: 1,
            region_len: 1 << 20,
            cost: CostModel::default(),
        });
        let idx = RemoteIndex::new(NodeId(0), IndexLayout::new(0, 64));
        (cluster, idx)
    }

    #[test]
    fn scan_empty_index() {
        let (c, idx) = setup();
        let dm = c.client();
        let scan = idx.scan(&dm, b"nothing", fingerprint(b"nothing")).unwrap();
        assert!(scan.matches.is_empty());
        // Two combined buckets of 16 slots, minus shared-overflow dedup.
        assert!(scan.empties.len() >= 24 && scan.empties.len() <= 32);
    }

    #[test]
    fn cas_then_scan_finds_match() {
        let (c, idx) = setup();
        let dm = c.client();
        let key = b"hello";
        let fp = fingerprint(key);
        let scan = idx.scan(&dm, key, fp).unwrap();
        let target = scan.empties[0];
        let new = SlotAtomic {
            fp,
            addr48: GlobalAddr::new(NodeId(0), 1 << 19).pack48(),
            ver: 1,
        };
        let prev = idx
            .cas_atomic(&dm, target, SlotAtomic::default(), new)
            .unwrap();
        assert!(prev.is_empty());

        let scan2 = idx.scan(&dm, key, fp).unwrap();
        assert_eq!(scan2.matches.len(), 1);
        assert_eq!(scan2.matches[0].atomic, new);
        assert_eq!(scan2.matches[0].addr, target);
    }

    #[test]
    fn failed_cas_reports_observed() {
        let (c, idx) = setup();
        let dm = c.client();
        let addr = idx.slot_addr(0, 0);
        let a1 = SlotAtomic {
            fp: 3,
            addr48: 64,
            ver: 1,
        };
        idx.cas_atomic(&dm, addr, SlotAtomic::default(), a1)
            .unwrap();
        // Stale expectation fails and reports a1.
        let a2 = SlotAtomic {
            fp: 3,
            addr48: 128,
            ver: 2,
        };
        let seen = idx
            .cas_atomic(&dm, addr, SlotAtomic::default(), a2)
            .unwrap();
        assert_eq!(seen, a1);
        assert_eq!(idx.read_slot(&dm, addr).unwrap().atomic, a1);
    }

    #[test]
    fn meta_lock_roundtrip() {
        let (c, idx) = setup();
        let dm = c.client();
        let addr = idx.slot_addr(2, 5);
        let m0 = SlotMeta::default();
        let locked = SlotMeta { len64: 0, epoch: 1 };
        let seen = idx.cas_meta(&dm, addr, m0, locked).unwrap();
        assert_eq!(seen, m0);
        assert!(idx.read_slot(&dm, addr).unwrap().meta.is_locked());
        let unlocked = SlotMeta { len64: 0, epoch: 2 };
        idx.cas_meta(&dm, addr, locked, unlocked).unwrap();
        assert!(!idx.read_slot(&dm, addr).unwrap().meta.is_locked());
    }

    #[test]
    fn snapshot_sees_committed_slots() {
        let (c, idx) = setup();
        let dm = c.client();
        let addr = idx.slot_addr(1, 3);
        let a = SlotAtomic {
            fp: 9,
            addr48: 64,
            ver: 7,
        };
        idx.cas_atomic(&dm, addr, SlotAtomic::default(), a).unwrap();
        let region = &c.node(NodeId(0)).unwrap().region;
        let snap = idx.snapshot(region);
        let found: Vec<_> = idx
            .slots_in_snapshot(&snap)
            .filter(|(_, _, at, _)| !at.is_empty())
            .collect();
        assert_eq!(found.len(), 1);
        let (g, s, at, _) = found[0];
        assert_eq!((g, s), (1, 3));
        assert_eq!(at, a);
        assert_eq!(idx.slot_addr(g, s), addr);
    }

    #[test]
    fn index_version_local_and_remote_agree() {
        let (c, idx) = setup();
        let dm = c.client();
        let region = &c.node(NodeId(0)).unwrap().region;
        assert_eq!(idx.index_version(&dm).unwrap(), 0);
        idx.local_set_index_version(region, 42);
        assert_eq!(idx.index_version(&dm).unwrap(), 42);
        assert_eq!(idx.local_index_version(region), 42);
    }

    #[test]
    fn restore_roundtrips_snapshot() {
        let (c, idx) = setup();
        let dm = c.client();
        idx.cas_atomic(
            &dm,
            idx.slot_addr(5, 11),
            SlotAtomic::default(),
            SlotAtomic {
                fp: 1,
                addr48: 64,
                ver: 3,
            },
        )
        .unwrap();
        let region = &c.node(NodeId(0)).unwrap().region;
        let snap = idx.snapshot(region);
        region.zero(0, snap.len()).unwrap();
        assert!(idx.snapshot(region).iter().all(|&b| b == 0));
        idx.restore(region, &snap);
        assert_eq!(idx.snapshot(region), snap);
    }
}
