//! The hash index of Aceso: a RACE-hashing-derived remote index with
//! 16-byte versioned slots.
//!
//! Aceso adopts RACE hashing for its index (§3.2) but extends the 8 B slot
//! to 16 B: an *Atomic* half modified only by `RDMA_CAS` (8-bit fingerprint,
//! 48-bit KV address, 8-bit version) and a *Meta* half holding infrequently
//! changing information (8-bit KV length in 64 B units, 56-bit epoch whose
//! low bit doubles as a lock). Together `epoch ≪ 8 | version` form the
//! logical 64-bit **Slot Version** that orders all KV pairs ever committed
//! to a slot — the foundation of versioning-based index recovery.
//!
//! Layout: buckets of 8 slots; groups of 3 buckets forming 2 *combined
//! buckets* (main₀+overflow and main₁+overflow) as in RACE hashing; two
//! independent hashes map a key to one combined bucket each, read with one
//! doorbell batch of two `RDMA_READ`s. A 64-bit **Index Version** lives at
//! the end of each MN's index area (§3.2.3).
//!
//! Simplification documented in `DESIGN.md`: the index is pre-sized (no
//! online directory expansion); the paper's evaluation also runs on a
//! pre-sized index.

#![forbid(unsafe_code)]

pub mod hash;
pub mod layout;
pub mod remote;
pub mod slot;

pub use hash::{fingerprint, hash_pair, route_hash};
pub use layout::{IndexLayout, IndexWord};
pub use remote::{RemoteIndex, SlotRef};
pub use slot::{SlotAtomic, SlotMeta, SLOT_BYTES};
