//! On-memory-node layout of one index partition.
//!
//! ```text
//! base ┌───────────────────────────────────────────────┐
//!      │ group 0: bucket₀ | overflow | bucket₁  (384 B)│
//!      │ group 1: …                                    │
//!      │ …                                             │
//!      ├───────────────────────────────────────────────┤
//!      │ Index Version (8 B)                           │
//!      └───────────────────────────────────────────────┘
//! ```
//!
//! A *combined bucket* is a main bucket plus the shared overflow bucket:
//! combined 0 spans bytes `[0, 256)` of the group, combined 1 spans
//! `[128, 384)`. Each is contiguous, so reading one costs one `RDMA_READ`.

use crate::hash::hash_pair;
use crate::slot::SLOT_BYTES;

/// Slots per bucket.
pub const BUCKET_SLOTS: u64 = 8;
/// Bytes per bucket.
pub const BUCKET_BYTES: u64 = BUCKET_SLOTS * SLOT_BYTES;
/// Buckets per group (main₀, overflow, main₁).
pub const GROUP_BUCKETS: u64 = 3;
/// Bytes per group.
pub const GROUP_BYTES: u64 = GROUP_BUCKETS * BUCKET_BYTES;
/// Slots per combined bucket (main + overflow).
pub const COMBINED_SLOTS: u64 = 2 * BUCKET_SLOTS;
/// Bytes per combined bucket.
pub const COMBINED_BYTES: u64 = 2 * BUCKET_BYTES;

/// Geometry of one MN's index area.
#[derive(Clone, Copy, Debug)]
pub struct IndexLayout {
    /// Byte offset of the index area inside the node's region.
    pub base: u64,
    /// Number of bucket groups.
    pub num_groups: u64,
}

impl IndexLayout {
    /// Creates a layout with `num_groups` groups at `base`.
    pub fn new(base: u64, num_groups: u64) -> Self {
        assert!(num_groups > 0, "index needs at least one group");
        IndexLayout { base, num_groups }
    }

    /// Sizes a layout to hold roughly `keys` keys at `load_factor`.
    pub fn with_capacity(base: u64, keys: u64, load_factor: f64) -> Self {
        let slots = (keys as f64 / load_factor).ceil() as u64;
        // 24 usable slots per group (3 buckets × 8).
        let groups = slots.div_ceil(GROUP_BUCKETS * BUCKET_SLOTS).max(1);
        IndexLayout::new(base, groups)
    }

    /// Total bytes of the index area including the trailing Index Version.
    pub fn size_bytes(&self) -> u64 {
        self.num_groups * GROUP_BYTES + 8
    }

    /// Total slots in the table.
    pub fn total_slots(&self) -> u64 {
        self.num_groups * GROUP_BUCKETS * BUCKET_SLOTS
    }

    /// Byte offset (in the region) of the trailing Index Version word.
    pub fn index_version_offset(&self) -> u64 {
        self.base + self.num_groups * GROUP_BYTES
    }

    /// Byte offset of group `g`.
    pub fn group_offset(&self, g: u64) -> u64 {
        debug_assert!(g < self.num_groups);
        self.base + g * GROUP_BYTES
    }

    /// Byte offset of combined bucket `c` (0 or 1) of group `g`.
    pub fn combined_offset(&self, g: u64, c: u64) -> u64 {
        debug_assert!(c < 2);
        self.group_offset(g) + c * BUCKET_BYTES
    }

    /// Byte offset of slot `s` (0..16) within combined bucket `c` of group
    /// `g`.
    pub fn slot_offset(&self, g: u64, c: u64, s: u64) -> u64 {
        debug_assert!(s < COMBINED_SLOTS);
        self.combined_offset(g, c) + s * SLOT_BYTES
    }

    /// The two (group, combined) coordinates for `key`.
    pub fn buckets_for(&self, key: &[u8]) -> [(u64, u64); 2] {
        let (h1, h2) = hash_pair(key);
        [(h1 % self.num_groups, 0), (h2 % self.num_groups, 1)]
    }

    /// Whether `offset` (region byte offset) lies inside a slot's Atomic
    /// word, and if so which slot; used by recovery assertions and tests.
    pub fn locate_slot(&self, offset: u64) -> Option<(u64, u64)> {
        if offset < self.base || offset >= self.base + self.num_groups * GROUP_BYTES {
            return None;
        }
        let rel = offset - self.base;
        let g = rel / GROUP_BYTES;
        let in_group = rel % GROUP_BYTES;
        Some((g, in_group / SLOT_BYTES))
    }

    /// Classifies the 8-byte word containing `offset` for the sanitizer's
    /// happens-before model (see `aceso-san`): slot Atomic words are the
    /// commit/release points of Algorithm 1, slot Meta words carry the
    /// epoch lock acquired with `cas_meta`, and the Index Version word is
    /// FAA'd by checkpointing.
    pub fn classify_word(&self, offset: u64) -> IndexWord {
        if offset / 8 == self.index_version_offset() / 8 {
            return IndexWord::IndexVersion;
        }
        let Some((group, slot)) = self.locate_slot(offset) else {
            return IndexWord::OutsideIndex;
        };
        let in_slot = (offset - self.base) % SLOT_BYTES;
        if in_slot < 8 {
            IndexWord::Atomic { group, slot }
        } else {
            IndexWord::Meta { group, slot }
        }
    }
}

/// Happens-before role of an 8-byte word in the index area (detector
/// metadata; see [`IndexLayout::classify_word`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexWord {
    /// A slot's Atomic word: CAS here is the commit point (release edge).
    Atomic {
        /// Bucket group of the slot.
        group: u64,
        /// Slot index within the group (0..24).
        slot: u64,
    },
    /// A slot's Meta word: holds the epoch lock taken with `cas_meta`.
    Meta {
        /// Bucket group of the slot.
        group: u64,
        /// Slot index within the group (0..24).
        slot: u64,
    },
    /// The trailing Index Version word (checkpoint FAA ordering).
    IndexVersion,
    /// Not inside this partition's index area.
    OutsideIndex,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_add_up() {
        let l = IndexLayout::new(4096, 10);
        assert_eq!(l.size_bytes(), 10 * 384 + 8);
        assert_eq!(l.index_version_offset(), 4096 + 3840);
        assert_eq!(l.total_slots(), 240);
    }

    #[test]
    fn combined_buckets_overlap_on_overflow() {
        let l = IndexLayout::new(0, 4);
        let g = 2;
        // Combined 0 covers buckets 0-1, combined 1 covers buckets 1-2.
        assert_eq!(l.combined_offset(g, 0), g * 384);
        assert_eq!(l.combined_offset(g, 1), g * 384 + 128);
        // Slot 8 of combined 0 and slot 0 of combined 1 are the same slot
        // (the shared overflow bucket).
        assert_eq!(l.slot_offset(g, 0, 8), l.slot_offset(g, 1, 0));
    }

    #[test]
    fn capacity_sizing() {
        let l = IndexLayout::with_capacity(0, 1_000_000, 0.75);
        assert!(l.total_slots() as f64 >= 1_000_000.0 / 0.75);
        // But not more than ~one group over.
        assert!(l.total_slots() as f64 <= 1_000_000.0 / 0.75 + 24.0 + 1.0);
    }

    #[test]
    fn buckets_for_within_range() {
        let l = IndexLayout::new(0, 7);
        for i in 0..1000u32 {
            for (g, c) in l.buckets_for(&i.to_le_bytes()) {
                assert!(g < 7);
                assert!(c < 2);
            }
        }
    }

    #[test]
    fn locate_slot_roundtrip() {
        let l = IndexLayout::new(128, 5);
        for g in 0..5 {
            for c in 0..2 {
                for s in 0..16 {
                    let off = l.slot_offset(g, c, s);
                    let (lg, ls) = l.locate_slot(off).unwrap();
                    assert_eq!(lg, g);
                    // Combined slot index → group slot index.
                    assert_eq!(ls, c * 8 + s);
                }
            }
        }
        assert!(l.locate_slot(0).is_none());
        assert!(l.locate_slot(l.index_version_offset()).is_none());
    }

    #[test]
    fn classify_word_roles() {
        let l = IndexLayout::new(128, 5);
        let slot = l.slot_offset(3, 1, 4);
        assert_eq!(
            l.classify_word(slot),
            IndexWord::Atomic { group: 3, slot: 12 }
        );
        assert_eq!(
            l.classify_word(slot + 8),
            IndexWord::Meta { group: 3, slot: 12 }
        );
        assert_eq!(
            l.classify_word(l.index_version_offset()),
            IndexWord::IndexVersion
        );
        assert_eq!(l.classify_word(0), IndexWord::OutsideIndex);
        assert_eq!(
            l.classify_word(l.index_version_offset() + 8),
            IndexWord::OutsideIndex
        );
    }
}
