//! The 16-byte index slot: Atomic and Meta halves (paper Figure 3).

/// Size of one index slot in bytes (8 B Atomic + 8 B Meta).
pub const SLOT_BYTES: u64 = 16;

/// The Atomic half of a slot: the only word write requests CAS.
///
/// Bit layout (most significant first):
/// `fp:8 | addr:48 | ver:8`. An all-zero word means "empty slot"
/// (fingerprints are never zero and packed addresses never encode offset 0).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SlotAtomic {
    /// 8-bit key fingerprint (never 0 for an occupied slot).
    pub fp: u8,
    /// 48-bit packed KV address ([`aceso_rdma::GlobalAddr::pack48`]).
    pub addr48: u64,
    /// 8-bit version, incremented by every committed CAS; rolls over into
    /// the Meta epoch.
    pub ver: u8,
}

impl SlotAtomic {
    /// Encodes into the on-index u64.
    #[inline]
    pub fn encode(&self) -> u64 {
        debug_assert!(self.addr48 < (1 << 48));
        ((self.fp as u64) << 56) | (self.addr48 << 8) | self.ver as u64
    }

    /// Decodes from the on-index u64.
    #[inline]
    pub fn decode(word: u64) -> Self {
        SlotAtomic {
            fp: (word >> 56) as u8,
            addr48: (word >> 8) & ((1 << 48) - 1),
            ver: word as u8,
        }
    }

    /// Whether this Atomic word marks an empty slot.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.encode() == 0
    }
}

/// The Meta half of a slot: infrequently changing information.
///
/// Bit layout: `len:8 | epoch:56`. `len` is the KV pair size in 64 B units
/// (so a slot describes KVs up to 16 KB; larger values are out of the
/// paper's scope). The epoch's least-significant bit is the lock flag: odd
/// means a client is mid-rollover (§3.2.2, Algorithm 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SlotMeta {
    /// KV pair length in 64-byte units.
    pub len64: u8,
    /// 56-bit epoch; low bit = lock.
    pub epoch: u64,
}

impl SlotMeta {
    /// Encodes into the on-index u64.
    #[inline]
    pub fn encode(&self) -> u64 {
        debug_assert!(self.epoch < (1 << 56));
        ((self.len64 as u64) << 56) | self.epoch
    }

    /// Decodes from the on-index u64.
    #[inline]
    pub fn decode(word: u64) -> Self {
        SlotMeta {
            len64: (word >> 56) as u8,
            epoch: word & ((1 << 56) - 1),
        }
    }

    /// Whether the Meta half is currently locked (epoch odd).
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.epoch & 1 == 1
    }
}

/// Composes the logical 64-bit Slot Version from epoch and version.
///
/// The epoch counts completed 256-update rounds (its lock bit is excluded:
/// only even epochs are ever observed in committed KV pairs), so
/// `slot_version = (epoch >> 1) << 8 | ver` is strictly increasing across
/// commits to one slot.
#[inline]
pub fn slot_version(epoch: u64, ver: u8) -> u64 {
    ((epoch >> 1) << 8) | ver as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn atomic_roundtrip() {
        let a = SlotAtomic {
            fp: 0xAB,
            addr48: 0x1234_5678_9ABC,
            ver: 0xEF,
        };
        assert_eq!(SlotAtomic::decode(a.encode()), a);
    }

    #[test]
    fn meta_roundtrip() {
        let m = SlotMeta {
            len64: 16,
            epoch: 0x00_ABCD_EF01_2345,
        };
        assert_eq!(SlotMeta::decode(m.encode()), m);
    }

    #[test]
    fn empty_detection() {
        assert!(SlotAtomic::decode(0).is_empty());
        assert!(!SlotAtomic {
            fp: 1,
            addr48: 64,
            ver: 0
        }
        .is_empty());
    }

    #[test]
    fn lock_bit() {
        assert!(!SlotMeta { len64: 0, epoch: 4 }.is_locked());
        assert!(SlotMeta { len64: 0, epoch: 5 }.is_locked());
    }

    #[test]
    fn slot_version_ordering_across_rollover() {
        // ver 255 at epoch 0, then rollover to ver 0 at epoch 2 (even,
        // unlocked): the slot version must strictly increase.
        let before = slot_version(0, 255);
        let after = slot_version(2, 0);
        assert!(after > before);
        assert_eq!(after - before, 1);
    }

    proptest! {
        #[test]
        fn proptest_atomic_roundtrip(fp: u8, addr in 0u64..(1 << 48), ver: u8) {
            let a = SlotAtomic { fp, addr48: addr, ver };
            prop_assert_eq!(SlotAtomic::decode(a.encode()), a);
        }

        #[test]
        fn proptest_meta_roundtrip(len64: u8, epoch in 0u64..(1 << 56)) {
            let m = SlotMeta { len64, epoch };
            prop_assert_eq!(SlotMeta::decode(m.encode()), m);
        }

        /// Slot versions are monotone in (epoch/2, ver) lexicographic order.
        #[test]
        fn proptest_version_monotone(e1 in 0u64..(1 << 40), v1: u8, v2: u8) {
            let e1 = e1 & !1; // Even (unlocked) epochs only.
            let e2 = e1 + 2;
            prop_assert!(slot_version(e2, v2) > slot_version(e1, v1)
                || (v2 as u64) + 256 > 255 + (v1 as u64)); // Always true; guards the next line.
            prop_assert!(slot_version(e2, 0) > slot_version(e1, 255));
            if v2 > v1 {
                prop_assert!(slot_version(e1, v2) > slot_version(e1, v1));
            }
        }
    }
}
