//! Key hashing: two independent bucket hashes, a routing hash, and the
//! 8-bit fingerprint stored in index slots.

/// 64-bit FNV-1a.
fn fnv1a(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer, used to derive independent hashes from one seed.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The two independent combined-bucket hashes of RACE hashing.
pub fn hash_pair(key: &[u8]) -> (u64, u64) {
    let h = fnv1a(key);
    (mix(h), mix(h ^ 0xA5A5_A5A5_5A5A_5A5A))
}

/// The hash used to route a key to a memory node's index partition.
///
/// Deliberately independent of [`hash_pair`] so per-node load stays balanced
/// regardless of bucket distribution.
pub fn route_hash(key: &[u8]) -> u64 {
    mix(fnv1a(key) ^ 0x1357_9BDF_0246_8ACE)
}

/// The 8-bit fingerprint stored in a slot's Atomic field to prune key
/// comparisons during SEARCH.
pub fn fingerprint(key: &[u8]) -> u8 {
    let f = (mix(fnv1a(key) ^ 0xFEED_FACE_CAFE_BEEF) >> 56) as u8;
    // Zero is reserved so an all-zero Atomic word always means "empty slot".
    if f == 0 {
        1
    } else {
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(hash_pair(b"key"), hash_pair(b"key"));
        assert_eq!(route_hash(b"key"), route_hash(b"key"));
        assert_eq!(fingerprint(b"key"), fingerprint(b"key"));
    }

    #[test]
    fn pair_is_independent() {
        let (a, b) = hash_pair(b"some key");
        assert_ne!(a, b);
    }

    #[test]
    fn fingerprint_never_zero() {
        for i in 0..10_000u32 {
            assert_ne!(fingerprint(&i.to_le_bytes()), 0);
        }
    }

    #[test]
    fn route_spreads_keys() {
        // 10k keys over 5 nodes: each node gets a reasonable share.
        let mut counts = [0usize; 5];
        for i in 0..10_000u32 {
            counts[(route_hash(&i.to_le_bytes()) % 5) as usize] += 1;
        }
        for c in counts {
            assert!((1600..2400).contains(&c), "unbalanced: {counts:?}");
        }
    }
}
