//! Pluggable fault-tolerance engines behind the `aceso-core` seam.
//!
//! Aceso's headline comparison (paper §5, Table 3) pits its hybrid
//! checkpoint+erasure scheme against full replication. This crate supplies
//! the replication side of that comparison as first-class [`FtEngine`]
//! implementations, so the bench harness (`bench table3`) and the
//! per-backend crash matrix (`chaos backends`) can drive all strategies
//! through one object-safe surface:
//!
//! | Kind | Engine | Strategy |
//! |---|---|---|
//! | [`EngineKind::Aceso`] | `aceso_core::AcesoEngine` | delta-append + XOR parity + tiered recovery |
//! | [`EngineKind::Fusee`] | [`FuseeEngine`] | FUSEE: replicated index + replicated KV blocks |
//! | [`EngineKind::Swarm`] | [`SwarmEngine`] | SWARM-style in-place replication, 1-RTT writes ([`swarm`]) |
//!
//! The [`launch`] factory builds any of the three at matched laptop-scale
//! geometry (5 memory nodes; replication factor 3 against Aceso's
//! two-parity X-Code stripes, i.e. equal two-failure tolerance), which is
//! what the conformance suite and the chaos backend matrix run against.
//!
//! ```
//! use aceso_engines::{launch, EngineKind};
//!
//! let eng = launch(EngineKind::Swarm).unwrap();
//! let mut c = eng.client().unwrap();
//! c.insert(b"k", b"v").unwrap();
//! assert_eq!(c.search(b"k").unwrap().as_deref(), Some(&b"v"[..]));
//! let col = eng.home_col(b"k");
//! assert!(eng.kill_column(col));
//! eng.recover_column(col).unwrap();
//! assert_eq!(c.search(b"k").unwrap().as_deref(), Some(&b"v"[..]));
//! assert!(eng.check().unwrap().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod swarm;

use aceso_core::{
    AcesoConfig, AcesoEngine, FtClient, FtEngine, FtError, FtResult, RecoverySummary, SpaceReport,
};
use aceso_fusee::{FuseeClient, FuseeConfig, FuseeError, FuseeStore};
use aceso_rdma::{Cluster, FaultPlan, NodeId, OpStats, RdmaError};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use swarm::{SwarmClient, SwarmConfig, SwarmError, SwarmStore};

/// The three strategies behind the seam.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Aceso's hybrid checkpoint + erasure scheme.
    Aceso,
    /// FUSEE-style full replication (replicated index, replicated KV).
    Fusee,
    /// SWARM-style in-place replication with the 1-RTT write path.
    Swarm,
}

impl EngineKind {
    /// All kinds, in Table 3 row order.
    pub const ALL: [EngineKind; 3] = [EngineKind::Aceso, EngineKind::Fusee, EngineKind::Swarm];

    /// The stable CLI name (`aceso` / `fusee` / `swarm`).
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineKind::Aceso => "aceso",
            EngineKind::Fusee => "fusee",
            EngineKind::Swarm => "swarm",
        }
    }
}

impl core::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "aceso" => Ok(EngineKind::Aceso),
            "fusee" => Ok(EngineKind::Fusee),
            "swarm" => Ok(EngineKind::Swarm),
            other => Err(format!("unknown engine '{other}' (aceso|fusee|swarm)")),
        }
    }
}

impl core::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Launches an engine of the given kind at matched laptop-scale geometry:
/// 5 memory nodes everywhere, replication factor 3 for the replication
/// engines (equal two-failure tolerance with Aceso's two-parity X-Code).
pub fn launch(kind: EngineKind) -> FtResult<Box<dyn FtEngine>> {
    match kind {
        EngineKind::Aceso => {
            let cfg = AcesoConfig {
                index_groups: 128,
                ..AcesoConfig::small()
            };
            Ok(Box::new(AcesoEngine::launch(cfg)?))
        }
        EngineKind::Fusee => {
            let cfg = FuseeConfig {
                index_groups: 128,
                ..FuseeConfig::small()
            };
            Ok(Box::new(FuseeEngine::launch(cfg)))
        }
        EngineKind::Swarm => {
            let cfg = SwarmConfig {
                index_groups: 128,
                ..SwarmConfig::small()
            };
            Ok(Box::new(SwarmEngine::launch(cfg)))
        }
    }
}

fn map_fusee(e: FuseeError) -> FtError {
    match e {
        FuseeError::Rdma(RdmaError::Injected { .. }) => FtError::Crashed(format!("{e:?}")),
        FuseeError::Rdma(RdmaError::NodeUnreachable(_)) => FtError::Unreachable(format!("{e:?}")),
        FuseeError::RetriesExhausted => FtError::Unreachable(format!("{e:?}")),
        FuseeError::NotFound => FtError::NotFound,
        other => FtError::Other(format!("{other:?}")),
    }
}

fn map_swarm(e: SwarmError) -> FtError {
    match e {
        SwarmError::Rdma(RdmaError::Injected { .. }) => FtError::Crashed(format!("{e:?}")),
        SwarmError::Rdma(RdmaError::NodeUnreachable(_)) => FtError::Unreachable(format!("{e:?}")),
        SwarmError::RetriesExhausted => FtError::Unreachable(format!("{e:?}")),
        SwarmError::NotFound => FtError::NotFound,
        other => FtError::Other(format!("{other:?}")),
    }
}

// ---------------------------------------------------------------------------
// FUSEE behind the seam.
// ---------------------------------------------------------------------------

/// [`FtEngine`] adapter over the FUSEE baseline store.
///
/// Client-crash recovery maps to [`FuseeStore::reconcile_replicas`]: the
/// partition primary is the commit point, so reconciliation rolls
/// run-ahead backups back and restores CAS liveness for later writers.
pub struct FuseeEngine {
    store: Arc<FuseeStore>,
    next_client: AtomicU32,
}

impl FuseeEngine {
    /// Launches a FUSEE store with `cfg` behind the seam.
    pub fn launch(cfg: FuseeConfig) -> Self {
        FuseeEngine {
            store: FuseeStore::launch(cfg),
            next_client: AtomicU32::new(0),
        }
    }

    /// The wrapped store, for FUSEE-specific surfaces the seam omits.
    pub fn store(&self) -> &Arc<FuseeStore> {
        &self.store
    }
}

struct FuseeFtClient {
    inner: FuseeClient,
    id: u32,
}

impl FtClient for FuseeFtClient {
    fn insert(&mut self, key: &[u8], value: &[u8]) -> FtResult<()> {
        self.inner.insert(key, value).map_err(map_fusee)
    }

    fn update(&mut self, key: &[u8], value: &[u8]) -> FtResult<()> {
        self.inner.update(key, value).map_err(map_fusee)
    }

    fn search(&mut self, key: &[u8]) -> FtResult<Option<Vec<u8>>> {
        self.inner.search(key).map_err(map_fusee)
    }

    fn delete(&mut self, key: &[u8]) -> FtResult<bool> {
        self.inner.delete(key).map_err(map_fusee)
    }

    fn id(&self) -> u32 {
        self.id
    }

    fn quiesce(&mut self) -> FtResult<()> {
        Ok(()) // Replication has no client-buffered server state.
    }

    fn install_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.inner.dm.install_fault_plan(plan);
    }

    fn take_ops(&mut self) -> OpStats {
        self.inner.dm.take_ops()
    }

    fn reset_stats(&mut self) {
        self.inner.dm.reset_stats();
    }
}

impl FtEngine for FuseeEngine {
    fn kind(&self) -> &'static str {
        "fusee"
    }

    fn client(&self) -> FtResult<Box<dyn FtClient>> {
        Ok(Box::new(FuseeFtClient {
            inner: self.store.client(),
            id: self.next_client.fetch_add(1, Ordering::Relaxed),
        }))
    }

    fn columns(&self) -> usize {
        self.store.cfg.num_mns
    }

    fn node_of(&self, col: usize) -> NodeId {
        self.store.node_of(col)
    }

    fn kill_column(&self, col: usize) -> bool {
        self.store.kill_mn(col)
    }

    fn recover_column(&self, col: usize) -> FtResult<RecoverySummary> {
        let r = self.store.recover_mn(col).map_err(map_fusee)?;
        Ok(RecoverySummary {
            net_ms: r.net_ms,
            bytes: r.index_bytes + r.block_bytes,
            kvs: r.slots,
        })
    }

    fn recover_client(&self, _id: u32) -> FtResult<()> {
        self.store.reconcile_replicas().map_err(map_fusee)?;
        Ok(())
    }

    fn check(&self) -> FtResult<Vec<String>> {
        Ok(self.store.replica_agreement())
    }

    fn space(&self) -> SpaceReport {
        let u = self.store.memory_usage();
        SpaceReport {
            valid: u.valid,
            redundancy: u.redundancy,
            delta: 0,
            allocated: u.allocated,
        }
    }

    fn cluster(&self) -> &Arc<Cluster> {
        &self.store.cluster
    }

    fn shutdown(&self) {
        // No background threads.
    }
}

// ---------------------------------------------------------------------------
// SWARM behind the seam.
// ---------------------------------------------------------------------------

/// [`FtEngine`] adapter over the SWARM-style store ([`swarm`]).
///
/// Client-crash recovery maps to [`SwarmStore::reconcile`]: torn cells
/// converge on the highest committed image and never-committed index slots
/// are rolled back.
pub struct SwarmEngine {
    store: Arc<SwarmStore>,
    next_client: AtomicU32,
}

impl SwarmEngine {
    /// Launches a SWARM store with `cfg` behind the seam.
    pub fn launch(cfg: SwarmConfig) -> Self {
        SwarmEngine {
            store: SwarmStore::launch(cfg),
            next_client: AtomicU32::new(0),
        }
    }

    /// The wrapped store, for SWARM-specific surfaces the seam omits.
    pub fn store(&self) -> &Arc<SwarmStore> {
        &self.store
    }
}

struct SwarmFtClient {
    inner: SwarmClient,
    id: u32,
}

impl FtClient for SwarmFtClient {
    fn insert(&mut self, key: &[u8], value: &[u8]) -> FtResult<()> {
        self.inner.insert(key, value).map_err(map_swarm)
    }

    fn update(&mut self, key: &[u8], value: &[u8]) -> FtResult<()> {
        self.inner.update(key, value).map_err(map_swarm)
    }

    fn search(&mut self, key: &[u8]) -> FtResult<Option<Vec<u8>>> {
        self.inner.search(key).map_err(map_swarm)
    }

    fn delete(&mut self, key: &[u8]) -> FtResult<bool> {
        self.inner.delete(key).map_err(map_swarm)
    }

    fn id(&self) -> u32 {
        self.id
    }

    fn quiesce(&mut self) -> FtResult<()> {
        Ok(())
    }

    fn install_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.inner.dm.install_fault_plan(plan);
    }

    fn take_ops(&mut self) -> OpStats {
        self.inner.dm.take_ops()
    }

    fn reset_stats(&mut self) {
        self.inner.dm.reset_stats();
    }
}

impl FtEngine for SwarmEngine {
    fn kind(&self) -> &'static str {
        "swarm"
    }

    fn client(&self) -> FtResult<Box<dyn FtClient>> {
        Ok(Box::new(SwarmFtClient {
            inner: self.store.client(),
            id: self.next_client.fetch_add(1, Ordering::Relaxed),
        }))
    }

    fn columns(&self) -> usize {
        self.store.cfg.num_mns
    }

    fn node_of(&self, col: usize) -> NodeId {
        self.store.node_of(col)
    }

    fn kill_column(&self, col: usize) -> bool {
        self.store.kill_mn(col)
    }

    fn recover_column(&self, col: usize) -> FtResult<RecoverySummary> {
        let r = self.store.recover_mn(col).map_err(map_swarm)?;
        Ok(RecoverySummary {
            net_ms: r.net_ms,
            bytes: r.index_bytes + r.block_bytes,
            kvs: r.slots,
        })
    }

    fn recover_client(&self, _id: u32) -> FtResult<()> {
        self.store.reconcile().map_err(map_swarm)?;
        Ok(())
    }

    fn check(&self) -> FtResult<Vec<String>> {
        Ok(self.store.replica_agreement())
    }

    fn space(&self) -> SpaceReport {
        let u = self.store.memory_usage();
        SpaceReport {
            valid: u.valid,
            redundancy: u.redundancy,
            delta: 0,
            allocated: u.allocated,
        }
    }

    fn cluster(&self) -> &Arc<Cluster> {
        &self.store.cluster
    }

    fn shutdown(&self) {
        // No background threads.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_names() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.as_str().parse::<EngineKind>().unwrap(), kind);
            assert_eq!(launch(kind).unwrap().kind(), kind.as_str());
        }
        assert!("raft".parse::<EngineKind>().is_err());
    }

    #[test]
    fn error_classes_map_uniformly() {
        assert_eq!(map_fusee(FuseeError::NotFound), FtError::NotFound);
        assert_eq!(map_swarm(SwarmError::NotFound), FtError::NotFound);
        assert!(matches!(
            map_fusee(FuseeError::RetriesExhausted),
            FtError::Unreachable(_)
        ));
        assert!(matches!(
            map_swarm(SwarmError::OutOfBlocks),
            FtError::Other(_)
        ));
    }
}
