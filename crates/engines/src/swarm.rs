//! SWARM-style in-place replication with a 1-RTT small-value write path.
//!
//! SWARM (PAPERS.md) argues that for small values, full replication can
//! commit in a *single* round trip: instead of appending new KV records and
//! then committing through a chain of index CASes (FUSEE's ≥ 2-RTT path),
//! the writer overwrites the value **in place** on every replica and folds
//! the commit compare-and-swap into the same doorbell batch. This module
//! reproduces that write path on the simulated fabric:
//!
//! * Values live in fixed-class **cells**: a commit-version word followed
//!   by a version-stamped payload image (`stamp | len | klen | key | value
//!   | stamp`). A cell is *committed* when its leading stamp, trailing
//!   stamp, and commit word all agree.
//! * An UPDATE whose client cache knows the cell posts one doorbell batch:
//!   `r` payload-image writes (stamped `v+1`) plus `r` commit CASes
//!   (`v → v+1`) — **one round trip end to end** (see
//!   [`SwarmClient::update`]).
//! * INSERT/DELETE fold their index-slot CASes into the same batch, paying
//!   only the preceding bucket scan as a second round trip.
//! * Torn states left by a crashed writer are repaired by
//!   [`SwarmStore::reconcile`]: the highest *committed* replica image wins
//!   and is rewritten everywhere; index slots that point at never-committed
//!   cells are rolled back.
//!
//! Concurrent writers to the *same* key are resolved last-writer-wins
//! through the commit CAS; a writer that loses any replica's CAS
//! reconciles the cell against the primary replica and retries. The
//! deterministic chaos/bench schedules drive disjoint key sets per client,
//! so the in-place payload overwrite (an intentional write/write data race
//! under last-writer-wins semantics) is never exercised under the race
//! detector — the same discipline SWARM's sequence-number argument makes
//! in hardware.
//!
//! The index is the same replicated RACE layout as the FUSEE baseline
//! (reused from [`aceso_fusee::layout`]); what changes is everything after
//! the bucket scan.

use aceso_fusee::layout::{FuseeLayout, Slot8, SlotPos};
use aceso_index::{fingerprint, route_hash};
use aceso_rdma::{
    Cluster, ClusterConfig, CostModel, DmClient, GlobalAddr, NodeId, OpKind, RdmaError,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Errors from the SWARM engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SwarmError {
    /// Fabric failure.
    Rdma(RdmaError),
    /// Key absent on UPDATE/DELETE.
    NotFound,
    /// No free slot in the key's buckets.
    IndexFull,
    /// Out of cell blocks.
    OutOfBlocks,
    /// Retry budget exhausted.
    RetriesExhausted,
    /// `recover_mn` called on a column whose node is still alive.
    ColumnAlive,
}

impl From<RdmaError> for SwarmError {
    fn from(e: RdmaError) -> Self {
        SwarmError::Rdma(e)
    }
}

/// Result alias.
pub type Result<T> = core::result::Result<T, SwarmError>;

/// SWARM engine configuration.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Number of memory nodes.
    pub num_mns: usize,
    /// Replication factor.
    pub replicas: usize,
    /// Index bucket groups per partition.
    pub index_groups: u64,
    /// Cell block size in bytes.
    pub block_size: u64,
    /// Cell blocks per MN.
    pub blocks_per_mn: u64,
    /// NIC cost model.
    pub cost: CostModel,
}

impl SwarmConfig {
    /// Laptop-scale defaults mirroring `FuseeConfig::small`.
    pub fn small() -> Self {
        SwarmConfig {
            num_mns: 5,
            replicas: 3,
            index_groups: 512,
            block_size: 64 << 10,
            blocks_per_mn: 48,
            cost: CostModel::default(),
        }
    }
}

/// Payload header: `stamp(u64) | total(u32) | klen(u16) | pad(u16)`.
const PAY_HDR: usize = 16;
/// Trailing stamp.
const PAY_TRAILER: usize = 8;
/// Commit-version word preceding the payload.
const VER_WORD: usize = 8;

/// One replicated block allocation (cf. the FUSEE allocator): block `id`
/// claimed on every column in `cols`.
#[derive(Clone, Debug)]
struct BlockSet {
    id: u64,
    cols: Vec<usize>,
}

struct CentralAlloc {
    next_block: Vec<u64>,
    sets: Vec<BlockSet>,
}

/// The SWARM-style store: replicated RACE index plus in-place replicated
/// cells.
pub struct SwarmStore {
    /// The memory pool.
    pub cluster: Arc<Cluster>,
    /// Configuration.
    pub cfg: SwarmConfig,
    /// Index/block geometry (shared with the FUSEE baseline).
    pub layout: FuseeLayout,
    alloc: Mutex<CentralAlloc>,
    /// Column → node directory (columns outlive nodes across recovery).
    nodes: RwLock<Vec<NodeId>>,
}

/// What one column recovery moved (see [`SwarmStore::recover_mn`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SwarmRecovery {
    /// Index-area bytes transferred.
    pub index_bytes: u64,
    /// Cell-block bytes transferred.
    pub block_bytes: u64,
    /// Blocks re-replicated.
    pub blocks: usize,
    /// Live index slots re-hosted.
    pub slots: usize,
    /// Copy verbs issued.
    pub verbs: u64,
    /// Modeled network milliseconds (deterministic).
    pub net_ms: f64,
}

/// Space accounting snapshot (see [`SwarmStore::memory_usage`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SwarmUsage {
    /// Live KV bytes (header + key + value), counted once.
    pub valid: u64,
    /// Fault-tolerance bytes: the `r − 1` extra copies plus the per-cell
    /// commit word and stamps on all `r` replicas.
    pub redundancy: u64,
    /// Primary share of allocated block bytes.
    pub allocated: u64,
}

impl SwarmStore {
    /// Launches the engine over `cfg.num_mns` memory nodes.
    pub fn launch(cfg: SwarmConfig) -> Arc<Self> {
        let layout = FuseeLayout::new(
            cfg.num_mns as u64,
            cfg.index_groups,
            cfg.block_size,
            cfg.blocks_per_mn,
        );
        let cluster = Cluster::new(ClusterConfig {
            num_mns: cfg.num_mns,
            region_len: layout.region_len(),
            cost: cfg.cost,
        });
        Arc::new(SwarmStore {
            cluster,
            alloc: Mutex::new(CentralAlloc {
                next_block: vec![0; cfg.num_mns],
                sets: Vec::new(),
            }),
            nodes: RwLock::new((0..cfg.num_mns).map(|c| NodeId(c as u16)).collect()),
            layout,
            cfg,
        })
    }

    /// Creates a client.
    pub fn client(self: &Arc<Self>) -> SwarmClient {
        SwarmClient {
            dm: self.cluster.client(),
            store: Arc::clone(self),
            open: HashMap::new(),
            free_cells: HashMap::new(),
            cache: HashMap::new(),
            max_retries: 10_000,
        }
    }

    /// The node currently hosting column `col`.
    pub fn node_of(&self, col: usize) -> NodeId {
        self.nodes.read()[col]
    }

    /// Whether column `col`'s node is alive.
    pub fn col_alive(&self, col: usize) -> bool {
        self.cluster.node(self.node_of(col)).is_ok()
    }

    /// The replica columns for a key: primary first.
    pub fn replica_cols(&self, key: &[u8]) -> Vec<usize> {
        let n = self.cfg.num_mns;
        let p = (route_hash(key) % n as u64) as usize;
        (0..self.cfg.replicas).map(|i| (p + i) % n).collect()
    }

    /// Columns hosting index partition `p`: primary (= `p`) first.
    pub fn partition_cols(&self, p: usize) -> Vec<usize> {
        let n = self.cfg.num_mns;
        (0..self.cfg.replicas).map(|i| (p + i) % n).collect()
    }

    /// Fail-stops the node hosting `col`. Returns `false` if already dead.
    pub fn kill_mn(&self, col: usize) -> bool {
        self.cluster.kill_node(self.node_of(col))
    }

    fn alloc_block_set(&self, cols: &[usize]) -> Result<u64> {
        let mut a = self.alloc.lock();
        let id = cols.iter().map(|&c| a.next_block[c]).max().unwrap();
        if id >= self.cfg.blocks_per_mn {
            return Err(SwarmError::OutOfBlocks);
        }
        for &c in cols {
            a.next_block[c] = id + 1;
        }
        a.sets.push(BlockSet {
            id,
            cols: cols.to_vec(),
        });
        Ok(id)
    }

    /// Recovers column `col` onto a fresh node by copying every index
    /// partition area and cell block the column hosted from surviving
    /// replicas, then republishing the column directory. `net_ms` is
    /// modeled (deterministic), like the FUSEE and Aceso recovery paths.
    pub fn recover_mn(self: &Arc<Self>, col: usize) -> Result<SwarmRecovery> {
        if self.col_alive(col) {
            return Err(SwarmError::ColumnAlive);
        }
        let replacement = self.cluster.add_node(self.layout.region_len());
        let dm = self.cluster.background_client();
        let mut rep = SwarmRecovery::default();
        let area = self.layout.area_size() as usize;
        for p in 0..self.cfg.num_mns {
            let hosting = self.partition_cols(p);
            if !hosting.contains(&col) {
                continue;
            }
            let src = *hosting
                .iter()
                .find(|&&c| c != col && self.col_alive(c))
                .ok_or(SwarmError::Rdma(RdmaError::NodeUnreachable(
                    self.node_of(col),
                )))?;
            let base = self.layout.area_base(p);
            let bytes = dm.read_vec(GlobalAddr::new(self.node_of(src), base), area)?;
            for w in bytes.chunks_exact(8) {
                if !Slot8::from_raw(u64::from_le_bytes(w.try_into().unwrap())).is_empty() {
                    rep.slots += 1;
                }
            }
            dm.write(GlobalAddr::new(replacement.id, base), &bytes)?;
            rep.index_bytes += 2 * area as u64;
            rep.verbs += 2;
        }
        let sets: Vec<BlockSet> = self.alloc.lock().sets.clone();
        for set in sets.iter().filter(|s| s.cols.contains(&col)) {
            let src = *set
                .cols
                .iter()
                .find(|&&c| c != col && self.col_alive(c))
                .ok_or(SwarmError::Rdma(RdmaError::NodeUnreachable(
                    self.node_of(col),
                )))?;
            let off = self.layout.block_offset(set.id);
            let bytes = dm.read_vec(
                GlobalAddr::new(self.node_of(src), off),
                self.cfg.block_size as usize,
            )?;
            dm.write(GlobalAddr::new(replacement.id, off), &bytes)?;
            rep.block_bytes += 2 * self.cfg.block_size;
            rep.blocks += 1;
            rep.verbs += 2;
        }
        self.nodes.write()[col] = replacement.id;
        rep.net_ms = (rep.index_bytes + rep.block_bytes) as f64 / self.cfg.cost.node_bw * 1e3
            + rep.verbs as f64 * self.cfg.cost.rtt_us * 1e-3;
        Ok(rep)
    }

    /// Repairs torn cells and index divergence left by a crashed writer.
    ///
    /// For every live index slot (walking each partition's first live
    /// replica), the pointed-to cell is read on every live replica column;
    /// the highest **committed** image (stamps and commit word agree) is
    /// rewritten over every diverging replica. A slot whose cell has *no*
    /// committed image anywhere (a crash before any commit CAS landed) is
    /// rolled back to empty on all replicas. Backup index areas are then
    /// re-aligned to the partition primary. Returns the number of repairs.
    pub fn reconcile(self: &Arc<Self>) -> Result<usize> {
        let dm = self.cluster.background_client();
        let area = self.layout.area_size() as usize;
        let mut repaired = 0usize;
        for p in 0..self.cfg.num_mns {
            let hosting = self.partition_cols(p);
            let live: Vec<usize> = hosting
                .iter()
                .copied()
                .filter(|&c| self.col_alive(c))
                .collect();
            let Some(&first) = live.first() else { continue };
            let base = self.layout.area_base(p);
            let mut pbytes = dm.read_vec(GlobalAddr::new(self.node_of(first), base), area)?;
            for i in 0..area / 8 {
                let w = &pbytes[i * 8..i * 8 + 8];
                let slot = Slot8::from_raw(u64::from_le_bytes(w.try_into().unwrap()));
                if slot.is_empty() {
                    continue;
                }
                let len = (slot.len_class().max(1) * 64) as usize;
                // Read the cell image on every live replica.
                let mut images: Vec<(usize, Vec<u8>)> = Vec::new();
                for &c in &live {
                    let bytes =
                        dm.read_vec(GlobalAddr::new(self.node_of(c), slot.offset()), len)?;
                    images.push((c, bytes));
                }
                let best = images
                    .iter()
                    .filter_map(|(_, b)| committed_version(b).map(|v| (v, b.clone())))
                    .max_by_key(|(v, _)| *v);
                match best {
                    Some((_, image)) => {
                        for (c, bytes) in &images {
                            if bytes != &image {
                                dm.write(
                                    GlobalAddr::new(self.node_of(*c), slot.offset()),
                                    &image,
                                )?;
                                repaired += 1;
                            }
                        }
                    }
                    None => {
                        // Never committed anywhere: roll the slot back
                        // (and in the local snapshot, so the alignment
                        // pass below doesn't resurrect it on backups).
                        for &c in &live {
                            dm.write(
                                GlobalAddr::new(self.node_of(c), base + i as u64 * 8),
                                &0u64.to_le_bytes(),
                            )?;
                        }
                        pbytes[i * 8..i * 8 + 8].copy_from_slice(&0u64.to_le_bytes());
                        repaired += 1;
                    }
                }
            }
            // Align backup index areas with the partition primary.
            for &b in &live[1..] {
                let node = self.node_of(b);
                let bbytes = dm.read_vec(GlobalAddr::new(node, base), area)?;
                for (i, (pw, bw)) in pbytes
                    .chunks_exact(8)
                    .zip(bbytes.chunks_exact(8))
                    .enumerate()
                {
                    if pw != bw {
                        dm.write(GlobalAddr::new(node, base + i as u64 * 8), pw)?;
                        repaired += 1;
                    }
                }
            }
        }
        Ok(repaired)
    }

    /// Replica-agreement check: every live index slot must point at a
    /// *committed* cell whose image is byte-identical on every live
    /// replica, and backup index areas must equal their partition primary.
    /// Forensic (direct region reads). Returns violations.
    pub fn replica_agreement(&self) -> Vec<String> {
        let mut v = Vec::new();
        let area = self.layout.area_size() as usize;
        for p in 0..self.cfg.num_mns {
            let hosting = self.partition_cols(p);
            let live: Vec<usize> = hosting
                .iter()
                .copied()
                .filter(|&c| self.col_alive(c))
                .collect();
            let Some(&first) = live.first() else { continue };
            let read = |c: usize, off: u64, len: usize| {
                self.cluster
                    .node(self.node_of(c))
                    .ok()
                    .and_then(|n| n.region.read_vec(off, len).ok())
            };
            let Some(pbytes) = read(first, self.layout.area_base(p), area) else {
                continue;
            };
            for &c in &live[1..] {
                if read(c, self.layout.area_base(p), area).as_ref() != Some(&pbytes) {
                    v.push(format!("partition {p}: index replica on col {c} diverges"));
                }
            }
            for (i, w) in pbytes.chunks_exact(8).enumerate() {
                let slot = Slot8::from_raw(u64::from_le_bytes(w.try_into().unwrap()));
                if slot.is_empty() {
                    continue;
                }
                let len = (slot.len_class().max(1) * 64) as usize;
                let Some(primary_cell) = read(first, slot.offset(), len) else {
                    continue;
                };
                if committed_version(&primary_cell).is_none() {
                    v.push(format!(
                        "partition {p} slot {i}: referenced cell at {:#x} not committed",
                        slot.offset()
                    ));
                }
                for &c in &live[1..] {
                    if read(c, slot.offset(), len).as_ref() != Some(&primary_cell) {
                        v.push(format!(
                            "partition {p} slot {i}: cell copy on col {c} diverges at {:#x}",
                            slot.offset()
                        ));
                    }
                }
            }
        }
        v
    }

    /// Space accounting for the Table 3 memory-overhead comparison.
    /// `valid` normalizes to the same 8-byte-header-plus-payload count the
    /// other engines use; the commit word and both stamps are charged to
    /// `redundancy` on all `r` replicas (they exist only for the
    /// replication protocol). Forensic and deterministic.
    pub fn memory_usage(&self) -> SwarmUsage {
        let mut u = SwarmUsage::default();
        let r = self.cfg.replicas as u64;
        let area = self.layout.area_size() as usize;
        let mut cells = 0u64;
        for p in 0..self.cfg.num_mns {
            let Some(&col) = self
                .partition_cols(p)
                .iter()
                .find(|&&c| self.col_alive(c))
            else {
                continue;
            };
            let Ok(node) = self.cluster.node(self.node_of(col)) else {
                continue;
            };
            let Ok(bytes) = node.region.read_vec(self.layout.area_base(p), area) else {
                continue;
            };
            for w in bytes.chunks_exact(8) {
                let slot = Slot8::from_raw(u64::from_le_bytes(w.try_into().unwrap()));
                if slot.is_empty() {
                    continue;
                }
                let Ok(hdr) = node
                    .region
                    .read_vec(slot.offset() + VER_WORD as u64 + 8, 4)
                else {
                    continue;
                };
                let total = u32::from_le_bytes(hdr.try_into().unwrap()) as u64;
                u.valid += 8 + total;
                cells += 1;
            }
        }
        u.redundancy =
            u.valid * (r - 1) + cells * r * (VER_WORD + 8 + PAY_TRAILER) as u64;
        u.allocated = self.alloc.lock().sets.len() as u64 * self.cfg.block_size;
        u
    }
}

/// Parses a cell image (`ver | stamped payload`) and returns its version
/// iff it is committed: leading stamp == trailing stamp == commit word,
/// with a sane length.
fn committed_version(cell: &[u8]) -> Option<u64> {
    if cell.len() < VER_WORD + PAY_HDR + PAY_TRAILER {
        return None;
    }
    let ver = u64::from_le_bytes(cell[0..8].try_into().unwrap());
    let stamp = u64::from_le_bytes(cell[8..16].try_into().unwrap());
    if ver == 0 || stamp != ver {
        return None;
    }
    let total = u32::from_le_bytes(cell[16..20].try_into().unwrap()) as usize;
    let klen = u16::from_le_bytes(cell[20..22].try_into().unwrap()) as usize;
    let end = VER_WORD + PAY_HDR + total + PAY_TRAILER;
    if klen > total || end > cell.len() {
        return None;
    }
    let trailer = u64::from_le_bytes(
        cell[end - PAY_TRAILER..end].try_into().unwrap(),
    );
    (trailer == ver).then_some(ver)
}

#[derive(Clone, Copy)]
struct OpenBlock {
    block: u64,
    next_cell: u64,
    cells: u64,
}

/// Client-side knowledge of a key's cell: where it lives, how big, and the
/// last commit version observed — everything the 1-RTT path needs.
#[derive(Clone, Copy)]
struct CachedCell {
    /// Cell byte offset (commit word).
    offset: u64,
    /// Whole-cell bytes (commit word + payload class).
    len: u32,
    /// Last observed committed version.
    ver: u64,
}

/// A SWARM client.
pub struct SwarmClient {
    /// The fabric endpoint (benches read its profiles).
    pub dm: DmClient,
    store: Arc<SwarmStore>,
    /// Open block per (primary column, cell class).
    open: HashMap<(usize, u32), OpenBlock>,
    /// Reclaimed cells per (primary column, cell class), with the version
    /// the cell was at when freed (versions are per-cell monotonic even
    /// across reuse, so a stale reader can never mistake a reused cell for
    /// its old tenant).
    free_cells: HashMap<(usize, u32), Vec<(u64, u64)>>,
    cache: HashMap<Vec<u8>, CachedCell>,
    /// Commit retry budget.
    pub max_retries: usize,
}

impl SwarmClient {
    fn node_of(&self, col: usize) -> NodeId {
        self.store.node_of(col)
    }

    /// Cell class (bytes) for a key/value pair: commit word + stamped
    /// payload, rounded to 64 B so `Slot8` can address it.
    fn cell_class(key: &[u8], value: &[u8]) -> u32 {
        ((VER_WORD + PAY_HDR + key.len() + value.len() + PAY_TRAILER).div_ceil(64) * 64) as u32
    }

    /// Builds the stamped payload image for version `ver`.
    fn encode_payload(class: u32, ver: u64, key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; class as usize - VER_WORD];
        buf[0..8].copy_from_slice(&ver.to_le_bytes());
        buf[8..12].copy_from_slice(&((key.len() + value.len()) as u32).to_le_bytes());
        buf[12..14].copy_from_slice(&(key.len() as u16).to_le_bytes());
        buf[PAY_HDR..PAY_HDR + key.len()].copy_from_slice(key);
        buf[PAY_HDR + key.len()..PAY_HDR + key.len() + value.len()].copy_from_slice(value);
        let end = PAY_HDR + key.len() + value.len() + PAY_TRAILER;
        buf[end - PAY_TRAILER..end].copy_from_slice(&ver.to_le_bytes());
        buf
    }

    /// Decodes a committed cell image for `key`. `None` when the cell is
    /// uncommitted, torn, or holds a different key.
    fn decode_cell<'a>(cell: &'a [u8], key: &[u8]) -> Option<&'a [u8]> {
        committed_version(cell)?;
        let total = u32::from_le_bytes(cell[16..20].try_into().unwrap()) as usize;
        let klen = u16::from_le_bytes(cell[20..22].try_into().unwrap()) as usize;
        let body = &cell[VER_WORD + PAY_HDR..VER_WORD + PAY_HDR + total];
        (&body[..klen] == key).then_some(&body[klen..])
    }

    fn alloc_cell(&mut self, cols: &[usize], class: u32) -> Result<(u64, u64)> {
        let pkey = (cols[0], class);
        if let Some(list) = self.free_cells.get_mut(&pkey) {
            if let Some(entry) = list.pop() {
                return Ok(entry);
            }
        }
        loop {
            if let Some(ob) = self.open.get_mut(&pkey) {
                if ob.next_cell < ob.cells {
                    let off =
                        self.store.layout.block_offset(ob.block) + ob.next_cell * class as u64;
                    ob.next_cell += 1;
                    return Ok((off, 0));
                }
                self.open.remove(&pkey);
            }
            let block = self.store.alloc_block_set(cols)?;
            self.open.insert(
                pkey,
                OpenBlock {
                    block,
                    next_cell: 0,
                    cells: self.store.cfg.block_size / class as u64,
                },
            );
        }
    }

    /// SEARCH: bucket scan on the primary (degraded: first live backup),
    /// then one read per candidate cell, validated by the commit stamps.
    pub fn search(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.dm.begin_op();
        let r = self.search_inner(key);
        match &r {
            Ok(_) => {
                self.dm.end_op(OpKind::Search);
            }
            Err(_) => self.dm.abort_op(),
        }
        r
    }

    fn search_inner(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let cols = self.store.replica_cols(key);
        for (i, &c) in cols.iter().enumerate() {
            match self.search_on(c, cols[0], key) {
                Err(SwarmError::Rdma(RdmaError::NodeUnreachable(_)))
                    if i + 1 < cols.len() =>
                {
                    continue; // Degraded: next replica answers the scan.
                }
                r => return r,
            }
        }
        unreachable!("replica loop always returns on the last column")
    }

    fn search_on(&mut self, col: usize, partition: usize, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let fp = fingerprint(key);
        let layout = self.store.layout;
        let scan = layout.scan(&self.dm, self.node_of(col), partition, key, fp)?;
        for s in &scan.matches {
            let len = ((s.slot.len_class().max(1)) * 64) as usize;
            let cell = self
                .dm
                .read_vec(GlobalAddr::new(self.node_of(col), s.slot.offset()), len)?;
            if let Some(v) = Self::decode_cell(&cell, key) {
                self.cache.insert(
                    key.to_vec(),
                    CachedCell {
                        offset: s.slot.offset(),
                        len: len as u32,
                        ver: committed_version(&cell).unwrap(),
                    },
                );
                return Ok(Some(v.to_vec()));
            }
        }
        Ok(None)
    }

    /// INSERT (upsert): a new key pays one scan round trip, then commits
    /// cell images, commit CASes, and index-slot CASes in **one** doorbell
    /// batch.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.dm.begin_op();
        let r = self.write(key, value, true);
        match &r {
            Ok(_) => {
                self.dm.end_op(OpKind::Insert);
            }
            Err(_) => self.dm.abort_op(),
        }
        r
    }

    /// UPDATE of an existing key — the 1-RTT path.
    ///
    /// With a warm cache (offset, class, version) and an unchanged size
    /// class, the whole operation is a single doorbell batch: `r` stamped
    /// payload writes plus `r` commit CASes. One round trip, no index
    /// traffic.
    ///
    /// ```
    /// use aceso_engines::swarm::{SwarmConfig, SwarmStore};
    ///
    /// let store = SwarmStore::launch(SwarmConfig::small());
    /// let mut c = store.client();
    /// c.insert(b"hot", b"aaaaaaaa").unwrap();
    /// c.dm.take_ops();
    ///
    /// c.update(b"hot", b"bbbbbbbb").unwrap();
    /// let rec = c.dm.take_ops().records.pop().unwrap();
    /// assert_eq!(rec.rtts, 1, "replicated commit in one round trip");
    /// assert_eq!(rec.cas, 3, "one commit CAS per replica, folded in");
    /// assert_eq!(rec.batches, 1, "a single doorbell batch");
    /// ```
    pub fn update(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.dm.begin_op();
        let r = self.write(key, value, false);
        match &r {
            Ok(_) => {
                self.dm.end_op(OpKind::Update);
            }
            Err(_) => self.dm.abort_op(),
        }
        r
    }

    /// DELETE: CASes the key's index slot to empty on every replica in one
    /// doorbell batch and recycles the cell.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        self.dm.begin_op();
        let r = self.delete_inner(key);
        match &r {
            Ok(_) => {
                self.dm.end_op(OpKind::Delete);
            }
            Err(_) => self.dm.abort_op(),
        }
        r
    }

    fn delete_inner(&mut self, key: &[u8]) -> Result<bool> {
        let cols = self.store.replica_cols(key);
        let fp = fingerprint(key);
        let layout = self.store.layout;
        for _ in 0..self.max_retries {
            let scan = layout.scan(&self.dm, self.node_of(cols[0]), cols[0], key, fp)?;
            let mut target: Option<(SlotPos, Slot8, u64)> = None;
            for s in &scan.matches {
                let len = ((s.slot.len_class().max(1)) * 64) as usize;
                let cell = self
                    .dm
                    .read_vec(GlobalAddr::new(self.node_of(cols[0]), s.slot.offset()), len)?;
                if Self::decode_cell(&cell, key).is_some() {
                    target = Some((s.pos, s.slot, committed_version(&cell).unwrap()));
                    break;
                }
            }
            let Some((pos, slot, ver)) = target else {
                self.cache.remove(key);
                return Ok(false);
            };
            // One doorbell batch: CAS the slot empty on every replica.
            let mut res: Result<bool> = Ok(true);
            self.dm.batch(|dm| {
                for &c in &cols {
                    let addr = layout.slot_addr(self.node_of(c), pos);
                    match dm.cas(addr, slot.raw(), Slot8::EMPTY.raw()) {
                        Ok(prev) if prev == slot.raw() => {}
                        Ok(_) => {
                            res = Err(SwarmError::RetriesExhausted); // Sentinel: retry.
                            return;
                        }
                        Err(e) => {
                            res = Err(e.into());
                            return;
                        }
                    }
                }
            });
            match res {
                Ok(done) => {
                    self.cache.remove(key);
                    let class = ((slot.len_class().max(1)) * 64) as u32;
                    self.free_cells
                        .entry((cols[0], class))
                        .or_default()
                        .push((slot.offset(), ver));
                    return Ok(done);
                }
                Err(SwarmError::RetriesExhausted) => {
                    self.dm.note_retry();
                    self.reconcile_key(&cols, pos, key)?;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(SwarmError::RetriesExhausted)
    }

    /// The shared write path. `allow_insert` distinguishes INSERT from
    /// UPDATE; both commit through the folded-CAS doorbell batch.
    fn write(&mut self, key: &[u8], value: &[u8], allow_insert: bool) -> Result<()> {
        let cols = self.store.replica_cols(key);
        let class = Self::cell_class(key, value);

        // Fast path: cached cell, same class → 1 RTT in-place commit.
        if let Some(c) = self.cache.get(key).copied() {
            if c.len == class {
                match self.commit_in_place(&cols, c, key, value)? {
                    true => return Ok(()),
                    false => {
                        self.cache.remove(key);
                    }
                }
            }
        }
        self.write_slow(key, value, allow_insert, class)
    }

    /// In-place 1-RTT commit against a known cell. `Ok(false)` = version
    /// conflict (stale cache or concurrent writer) — caller falls back.
    fn commit_in_place(
        &mut self,
        cols: &[usize],
        cell: CachedCell,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool> {
        let image = Self::encode_payload(cell.len, cell.ver + 1, key, value);
        let mut res: Result<bool> = Ok(true);
        self.dm.batch(|dm| {
            for &c in cols {
                let node = self.store.node_of(c);
                if let Err(e) = dm.write(GlobalAddr::new(node, cell.offset + VER_WORD as u64), &image)
                {
                    res = Err(e.into());
                    return;
                }
            }
            for &c in cols {
                let node = self.store.node_of(c);
                match dm.cas(
                    GlobalAddr::new(node, cell.offset),
                    cell.ver,
                    cell.ver + 1,
                ) {
                    Ok(prev) if prev == cell.ver => {}
                    Ok(_) => {
                        res = Ok(false);
                        return;
                    }
                    Err(e) => {
                        res = Err(e.into());
                        return;
                    }
                }
            }
        });
        if let Ok(true) = res {
            self.cache.insert(
                key.to_vec(),
                CachedCell {
                    ver: cell.ver + 1,
                    ..cell
                },
            );
        }
        if let Ok(false) = res {
            // Lost a race (or stale cache): converge replicas on the
            // primary's committed image before anyone retries.
            self.dm.note_retry();
            self.reconcile_cell(cols, cell.offset, cell.len as usize)?;
        }
        res
    }

    /// Slow path: scan, place the value (reusing the existing cell when the
    /// class matches), and commit everything in one doorbell batch.
    fn write_slow(
        &mut self,
        key: &[u8],
        value: &[u8],
        allow_insert: bool,
        class: u32,
    ) -> Result<()> {
        let cols = self.store.replica_cols(key);
        let fp = fingerprint(key);
        let layout = self.store.layout;
        for _ in 0..self.max_retries {
            let scan = layout.scan(&self.dm, self.node_of(cols[0]), cols[0], key, fp)?;
            let mut existing: Option<(aceso_fusee::layout::SlotPos, Slot8, u64)> = None;
            for s in &scan.matches {
                let len = ((s.slot.len_class().max(1)) * 64) as usize;
                let cell = self
                    .dm
                    .read_vec(GlobalAddr::new(self.node_of(cols[0]), s.slot.offset()), len)?;
                if Self::decode_cell(&cell, key).is_some() {
                    existing = Some((s.pos, s.slot, committed_version(&cell).unwrap()));
                    break;
                }
            }
            if existing.is_none() && !allow_insert {
                return Err(SwarmError::NotFound);
            }

            if let Some((_, slot, ver)) = existing {
                let elen = ((slot.len_class().max(1)) * 64) as u32;
                if elen == class {
                    // Same class: in-place against the freshly-read version.
                    let cached = CachedCell {
                        offset: slot.offset(),
                        len: class,
                        ver,
                    };
                    if self.commit_in_place(&cols, cached, key, value)? {
                        return Ok(());
                    }
                    continue; // commit_in_place already noted the retry.
                }
            }

            // New (or re-classed) cell: images + commit CAS + slot CAS in
            // one doorbell batch.
            let (off, base_ver) = self.alloc_cell(&cols, class)?;
            let image = Self::encode_payload(class, base_ver + 1, key, value);
            let new_slot = Slot8::new(fp, off, class as u64 / 64);
            let (pos, old_slot) = match existing {
                Some((pos, slot, _)) => (pos, slot),
                None => {
                    let Some(pos) = scan.empties.first().copied() else {
                        return Err(SwarmError::IndexFull);
                    };
                    (pos, Slot8::EMPTY)
                }
            };
            let mut res: Result<bool> = Ok(true);
            self.dm.batch(|dm| {
                for &c in &cols {
                    let node = self.store.node_of(c);
                    if let Err(e) =
                        dm.write(GlobalAddr::new(node, off + VER_WORD as u64), &image)
                    {
                        res = Err(e.into());
                        return;
                    }
                }
                for &c in &cols {
                    let node = self.store.node_of(c);
                    match dm.cas(GlobalAddr::new(node, off), base_ver, base_ver + 1) {
                        Ok(prev) if prev == base_ver => {}
                        Ok(_) => {
                            res = Ok(false);
                            return;
                        }
                        Err(e) => {
                            res = Err(e.into());
                            return;
                        }
                    }
                }
                for &c in &cols {
                    let addr = layout.slot_addr(self.store.node_of(c), pos);
                    match dm.cas(addr, old_slot.raw(), new_slot.raw()) {
                        Ok(prev) if prev == old_slot.raw() => {}
                        Ok(_) => {
                            res = Ok(false);
                            return;
                        }
                        Err(e) => {
                            res = Err(e.into());
                            return;
                        }
                    }
                }
            });
            match res {
                Ok(true) => {
                    if let Some((_, slot, ver)) = existing {
                        let eclass = ((slot.len_class().max(1)) * 64) as u32;
                        self.free_cells
                            .entry((cols[0], eclass))
                            .or_default()
                            .push((slot.offset(), ver));
                    }
                    self.cache.insert(
                        key.to_vec(),
                        CachedCell {
                            offset: off,
                            len: class,
                            ver: base_ver + 1,
                        },
                    );
                    return Ok(());
                }
                Ok(false) => {
                    self.dm.note_retry();
                    self.reconcile_key(&cols, pos, key)?;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(SwarmError::RetriesExhausted)
    }

    /// After a lost race on `pos`, converge the slot and its cell on the
    /// primary's committed state so every replica agrees before a retry.
    fn reconcile_key(&mut self, cols: &[usize], pos: SlotPos, key: &[u8]) -> Result<()> {
        let praw = self
            .dm
            .read_vec(GlobalAddr::new(self.node_of(cols[0]), pos.offset), 8)?;
        for &c in &cols[1..] {
            self.dm
                .write(GlobalAddr::new(self.node_of(c), pos.offset), &praw)?;
        }
        let slot = Slot8::from_raw(u64::from_le_bytes(praw.try_into().unwrap()));
        if !slot.is_empty() && slot.fp() == fingerprint(key) {
            let len = ((slot.len_class().max(1)) * 64) as usize;
            self.reconcile_cell(cols, slot.offset(), len)?;
        }
        Ok(())
    }

    /// Rewrites every replica of the cell at `offset` with the primary's
    /// bytes (commit word included).
    fn reconcile_cell(&mut self, cols: &[usize], offset: u64, len: usize) -> Result<()> {
        let image = self
            .dm
            .read_vec(GlobalAddr::new(self.node_of(cols[0]), offset), len)?;
        for &c in &cols[1..] {
            self.dm
                .write(GlobalAddr::new(self.node_of(c), offset), &image)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Arc<SwarmStore> {
        SwarmStore::launch(SwarmConfig::small())
    }

    #[test]
    fn crud_roundtrip() {
        let s = store();
        let mut c = s.client();
        c.insert(b"k1", b"v1").unwrap();
        assert_eq!(c.search(b"k1").unwrap().as_deref(), Some(&b"v1"[..]));
        c.update(b"k1", b"v2").unwrap();
        assert_eq!(c.search(b"k1").unwrap().as_deref(), Some(&b"v2"[..]));
        assert!(c.delete(b"k1").unwrap());
        assert_eq!(c.search(b"k1").unwrap(), None);
        assert!(!c.delete(b"k1").unwrap());
        assert_eq!(c.update(b"k1", b"x"), Err(SwarmError::NotFound));
        c.insert(b"k1", b"v3").unwrap();
        assert_eq!(c.search(b"k1").unwrap().as_deref(), Some(&b"v3"[..]));
    }

    #[test]
    fn cached_update_is_one_round_trip() {
        let s = store();
        let mut c = s.client();
        c.insert(b"hotkey", b"aaaaaaaa").unwrap();
        c.dm.take_ops();
        c.update(b"hotkey", b"bbbbbbbb").unwrap();
        let ops = c.dm.take_ops();
        let rec = ops.records.last().unwrap();
        assert_eq!(rec.rtts, 1, "cached same-class update must be 1 RTT");
        assert_eq!(rec.cas, 3, "one commit CAS per replica");
        assert_eq!(rec.batches, 1, "single doorbell batch");
    }

    #[test]
    fn updates_replicate_in_place() {
        let s = store();
        let mut c = s.client();
        c.insert(b"inplace", b"before!!").unwrap();
        let cached = c.cache.get(&b"inplace"[..]).copied().unwrap();
        c.update(b"inplace", b"after!!!").unwrap();
        let after = c.cache.get(&b"inplace"[..]).copied().unwrap();
        assert_eq!(cached.offset, after.offset, "update must not move the cell");
        assert_eq!(after.ver, cached.ver + 1);
        let cols = s.replica_cols(b"inplace");
        let mut copies = Vec::new();
        for &col in &cols {
            let node = s.cluster.node(s.node_of(col)).unwrap();
            copies.push(
                node.region
                    .read_vec(cached.offset, cached.len as usize)
                    .unwrap(),
            );
        }
        assert_eq!(copies[0], copies[1]);
        assert_eq!(copies[1], copies[2]);
        assert!(s.replica_agreement().is_empty());
    }

    #[test]
    fn many_keys_roundtrip() {
        let s = store();
        let mut c = s.client();
        for i in 0..1000u32 {
            let k = format!("sk-{i}");
            c.insert(k.as_bytes(), k.as_bytes()).unwrap();
        }
        for i in (0..1000u32).step_by(37) {
            let k = format!("sk-{i}");
            assert_eq!(
                c.search(k.as_bytes()).unwrap().as_deref(),
                Some(k.as_bytes())
            );
        }
        assert!(s.replica_agreement().is_empty());
    }

    #[test]
    fn degraded_search_served_by_backup() {
        let s = store();
        let mut c = s.client();
        for i in 0..40u32 {
            let k = format!("sd-{i:02}");
            c.insert(k.as_bytes(), k.as_bytes()).unwrap();
        }
        let victim = s.replica_cols(b"sd-00")[0];
        assert!(s.kill_mn(victim));
        let mut cold = s.client();
        for i in 0..40u32 {
            let k = format!("sd-{i:02}");
            assert_eq!(
                cold.search(k.as_bytes()).unwrap().as_deref(),
                Some(k.as_bytes()),
                "{k} unreadable with col {victim} down"
            );
        }
    }

    #[test]
    fn recover_mn_restores_column() {
        let s = store();
        let mut c = s.client();
        for i in 0..200u32 {
            let k = format!("sr-{i:03}");
            c.insert(k.as_bytes(), format!("val-{i}").as_bytes()).unwrap();
        }
        let victim = s.replica_cols(b"sr-000")[0];
        let old = s.node_of(victim);
        assert!(s.kill_mn(victim));
        let rep = s.recover_mn(victim).unwrap();
        assert!(rep.blocks > 0 && rep.index_bytes > 0 && rep.net_ms > 0.0);
        assert_ne!(s.node_of(victim), old);
        let mut fresh = s.client();
        for i in 0..200u32 {
            let k = format!("sr-{i:03}");
            assert_eq!(
                fresh.search(k.as_bytes()).unwrap().as_deref(),
                Some(format!("val-{i}").as_bytes())
            );
        }
        fresh.update(b"sr-000", b"post-recovery").unwrap();
        assert!(s.replica_agreement().is_empty());
        assert_eq!(s.recover_mn(victim), Err(SwarmError::ColumnAlive));
    }

    #[test]
    fn reconcile_repairs_torn_write() {
        let s = store();
        let mut c = s.client();
        c.insert(b"torn", b"committed").unwrap();
        let cached = c.cache.get(&b"torn"[..]).copied().unwrap();
        // Simulate a writer that died after writing one replica's payload
        // image (stamped ver+1) but before any commit CAS landed.
        let cols = s.replica_cols(b"torn");
        let node = s.cluster.node(s.node_of(cols[1])).unwrap();
        let image = SwarmClient::encode_payload(cached.len, cached.ver + 1, b"torn", b"torn-val!");
        node.region
            .write(cached.offset + VER_WORD as u64, &image)
            .unwrap();
        assert!(
            !s.replica_agreement().is_empty(),
            "divergence must be visible before repair"
        );
        assert!(s.reconcile().unwrap() > 0);
        assert!(s.replica_agreement().is_empty());
        // The committed value survived (the torn image never committed).
        let mut fresh = s.client();
        assert_eq!(
            fresh.search(b"torn").unwrap().as_deref(),
            Some(&b"committed"[..])
        );
    }

    #[test]
    fn reconcile_rolls_back_uncommitted_insert() {
        let s = store();
        let mut c = s.client();
        c.insert(b"anchor", b"x").unwrap();
        // Fabricate a crashed insert: index slots planted on all replicas
        // but the cell never committed (commit word still 0).
        let cols = s.replica_cols(b"ghost-key");
        let fp = fingerprint(b"ghost-key");
        let dm = s.cluster.client();
        let scan = s
            .layout
            .scan(&dm, s.node_of(cols[0]), cols[0], b"ghost-key", fp)
            .unwrap();
        let pos = scan.empties[0];
        let off = s.layout.block_offset(s.cfg.blocks_per_mn - 1);
        let slot = Slot8::new(fp, off, 1);
        for &col in &cols {
            let node = s.cluster.node(s.node_of(col)).unwrap();
            node.region.store64(pos.offset, slot.raw()).unwrap();
        }
        let v = s.replica_agreement();
        assert!(
            v.iter().any(|m| m.contains("not committed")),
            "uncommitted referent not flagged: {v:?}"
        );
        assert!(s.reconcile().unwrap() > 0);
        assert!(s.replica_agreement().is_empty());
        let mut fresh = s.client();
        assert_eq!(fresh.search(b"ghost-key").unwrap(), None);
    }

    #[test]
    fn memory_usage_reports_replication_overhead() {
        let s = store();
        let mut c = s.client();
        for i in 0..64u32 {
            c.insert(format!("sm-{i:03}").as_bytes(), &[9u8; 100]).unwrap();
        }
        let u = s.memory_usage();
        assert!(u.valid > 64 * 100);
        assert!(
            u.redundancy > u.valid * 2,
            "r=3 copies plus stamp overhead"
        );
        assert!(u.allocated > 0);
    }

    #[test]
    fn free_cells_keep_version_monotonic() {
        let s = store();
        let mut c = s.client();
        c.insert(b"reuse-key!", b"0123456789").unwrap();
        let first = c.cache.get(&b"reuse-key!"[..]).copied().unwrap();
        c.update(b"reuse-key!", b"9876543210").unwrap();
        assert!(c.delete(b"reuse-key!").unwrap());
        // Find a second key in the same placement group (free lists are
        // per primary column) and the same size class.
        let primary = s.replica_cols(b"reuse-key!")[0];
        let newcomer = (0..1000u32)
            .map(|i| format!("cand-{i:04}"))
            .find(|k| s.replica_cols(k.as_bytes())[0] == primary)
            .unwrap();
        // Same class ⇒ the freed cell is reused, and its version continues
        // past the old tenant's instead of restarting at 1.
        c.insert(newcomer.as_bytes(), b"aaaaaaaaaa").unwrap();
        let reused = c.cache.get(newcomer.as_bytes()).copied().unwrap();
        assert_eq!(first.offset, reused.offset);
        assert!(reused.ver > first.ver);
        assert!(s.replica_agreement().is_empty());
    }
}
