//! Engine conformance suite: every [`FtEngine`] implementation must pass
//! the identical script, so `bench table3` and `chaos backends` compare
//! strategies, not accidental API differences.
//!
//! The contract asserted here is the one documented on
//! [`aceso_core::FtClient`]: upsert inserts, `NotFound` on missing
//! update, `Ok(false)` on missing delete, deleted keys read as absent,
//! kill/recover round trips preserve data, `check()` is clean after a
//! quiesced workload, and space/ops reporting is populated.

use aceso_core::{FtEngine, FtError};
use aceso_engines::{launch, EngineKind};

fn each_engine(mut f: impl FnMut(Box<dyn FtEngine>)) {
    for kind in EngineKind::ALL {
        let eng = launch(kind).unwrap();
        f(eng);
    }
}

#[test]
fn crud_semantics_conform() {
    each_engine(|eng| {
        let kind = eng.kind();
        let mut c = eng.client().unwrap();
        assert_eq!(
            c.update(b"absent", b"x").unwrap_err(),
            FtError::NotFound,
            "[{kind}] update of a missing key"
        );
        assert!(!c.delete(b"absent").unwrap(), "[{kind}] delete of a missing key");
        c.insert(b"k", b"v1").unwrap();
        assert_eq!(c.search(b"k").unwrap().as_deref(), Some(&b"v1"[..]), "[{kind}]");
        c.insert(b"k", b"v2").unwrap(); // Upsert.
        assert_eq!(c.search(b"k").unwrap().as_deref(), Some(&b"v2"[..]), "[{kind}]");
        c.update(b"k", b"v3-longer-value").unwrap(); // Size-class change.
        assert_eq!(
            c.search(b"k").unwrap().as_deref(),
            Some(&b"v3-longer-value"[..]),
            "[{kind}]"
        );
        assert!(c.delete(b"k").unwrap(), "[{kind}]");
        assert_eq!(c.search(b"k").unwrap(), None, "[{kind}] deleted key must read absent");
        assert_eq!(
            c.update(b"k", b"x").unwrap_err(),
            FtError::NotFound,
            "[{kind}] update after delete"
        );
        c.insert(b"k", b"v4").unwrap(); // Reinsert after delete.
        assert_eq!(c.search(b"k").unwrap().as_deref(), Some(&b"v4"[..]), "[{kind}]");
        eng.shutdown();
    });
}

#[test]
fn fresh_client_sees_existing_data() {
    each_engine(|eng| {
        let kind = eng.kind();
        let mut w = eng.client().unwrap();
        for i in 0..50u32 {
            w.insert(format!("cf-{i:02}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        let mut r = eng.client().unwrap();
        assert_ne!(w.id(), r.id(), "[{kind}] client ids must be distinct");
        for i in 0..50u32 {
            assert_eq!(
                r.search(format!("cf-{i:02}").as_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes()),
                "[{kind}] cold client missed cf-{i:02}"
            );
        }
        eng.shutdown();
    });
}

#[test]
fn kill_and_recover_preserves_data() {
    each_engine(|eng| {
        let kind = eng.kind();
        let mut c = eng.client().unwrap();
        for i in 0..100u32 {
            c.insert(format!("kr-{i:03}").as_bytes(), format!("val-{i}").as_bytes())
                .unwrap();
        }
        c.quiesce().unwrap();
        eng.tick().unwrap();
        let col = eng.home_col(b"kr-000");
        assert!(col < eng.columns(), "[{kind}]");
        assert!(eng.kill_column(col), "[{kind}]");
        assert!(!eng.kill_column(col), "[{kind}] second kill must report dead");
        let s = eng.recover_column(col).unwrap();
        assert!(s.bytes > 0 && s.net_ms > 0.0, "[{kind}] empty recovery summary: {s:?}");
        for i in 0..100u32 {
            assert_eq!(
                c.search(format!("kr-{i:03}").as_bytes()).unwrap().as_deref(),
                Some(format!("val-{i}").as_bytes()),
                "[{kind}] kr-{i:03} lost across kill/recover"
            );
        }
        c.update(b"kr-000", b"post-recovery").unwrap();
        assert!(eng.check().unwrap().is_empty(), "[{kind}] integrity check dirty");
        eng.shutdown();
    });
}

#[test]
fn recover_client_is_safe_when_quiescent() {
    each_engine(|eng| {
        let kind = eng.kind();
        let mut c = eng.client().unwrap();
        for i in 0..20u32 {
            c.insert(format!("rc-{i:02}").as_bytes(), b"payload").unwrap();
        }
        c.quiesce().unwrap();
        let id = c.id();
        drop(c);
        eng.recover_client(id).unwrap();
        assert!(eng.check().unwrap().is_empty(), "[{kind}]");
        let mut again = eng.client().unwrap();
        assert_eq!(
            again.search(b"rc-00").unwrap().as_deref(),
            Some(&b"payload"[..]),
            "[{kind}]"
        );
        eng.shutdown();
    });
}

#[test]
fn space_reports_populate_and_rank() {
    let mut factors = std::collections::BTreeMap::new();
    each_engine(|eng| {
        let kind = eng.kind();
        let mut c = eng.client().unwrap();
        // Enough data that Aceso's block-granular parity and checkpoint
        // overheads amortize (Table 3 compares loaded stores, not empty
        // ones).
        for i in 0..3000u32 {
            c.insert(format!("sp-{i:04}").as_bytes(), &[5u8; 128]).unwrap();
        }
        c.quiesce().unwrap();
        eng.tick().unwrap();
        let sp = eng.space();
        assert!(sp.valid > 3000 * 128, "[{kind}] valid bytes missing");
        assert!(sp.redundancy > 0, "[{kind}] redundancy not accounted");
        assert!(sp.overhead_factor() > 1.0, "[{kind}]");
        factors.insert(kind.to_string(), sp.overhead_factor());
        eng.shutdown();
    });
    // The paper's Table 3 ordering at equal two-failure tolerance: hybrid
    // checkpoint+erasure stays well under 3-way replication.
    let aceso = factors["aceso"];
    for repl in ["fusee", "swarm"] {
        assert!(
            aceso < factors[repl],
            "aceso overhead {aceso:.2}x not below {repl} {:.2}x",
            factors[repl]
        );
        assert!(
            factors[repl] > 2.5,
            "{repl} r=3 overhead should approach 3x, got {:.2}x",
            factors[repl]
        );
    }
}

#[test]
fn ops_are_recorded_per_operation() {
    each_engine(|eng| {
        let kind = eng.kind();
        let mut c = eng.client().unwrap();
        c.insert(b"ops-key", b"aaaaaaaa").unwrap();
        c.reset_stats();
        c.update(b"ops-key", b"bbbbbbbb").unwrap();
        c.search(b"ops-key").unwrap();
        let ops = c.take_ops();
        assert_eq!(ops.records.len(), 2, "[{kind}] one record per op");
        assert!(ops.records.iter().all(|r| r.rtts >= 1), "[{kind}]");
        if kind == "swarm" {
            assert_eq!(
                ops.records[0].rtts, 1,
                "[swarm] cached same-class update must be one round trip"
            );
        }
        assert!(c.take_ops().records.is_empty(), "[{kind}] take_ops must drain");
        eng.shutdown();
    });
}
