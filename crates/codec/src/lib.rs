//! LZ77 block compression for differential checkpoints.
//!
//! Aceso compresses the XOR delta between consecutive index checkpoints
//! before shipping it to the neighbouring memory node (§3.2.1, Figure 3).
//! The deltas are dominated by long zero runs (only slots touched since the
//! last round are non-zero), so any LZ77 coder with unbounded match lengths
//! collapses them dramatically — the paper reports a 2 GB index compressing
//! to a 27 MB delta.
//!
//! The format follows the spirit of the LZ4 block format: a token byte
//! packs a 4-bit literal length and a 4-bit match length (both with 255-byte
//! continuation extensions), followed by the literal bytes and a 2-byte
//! little-endian match offset. Matching is greedy over a 4-byte hash table.
//! Written from scratch; no attempt is made at bit-for-bit LZ4
//! compatibility, only at the same asymptotics and speed class.

#![forbid(unsafe_code)]

/// Minimum match length; shorter matches are emitted as literals.
const MIN_MATCH: usize = 4;
/// Match-offset window (64 KB, like LZ4's 16-bit offsets).
const WINDOW: usize = 65_535;
/// Log2 of the hash-table size.
const HASH_BITS: u32 = 16;

/// Errors from [`decompress`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The compressed stream is truncated or malformed.
    Corrupt,
    /// The stream decodes to more than the declared output size.
    TooLong,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Corrupt => write!(f, "corrupt compressed stream"),
            CodecError::TooLong => write!(f, "stream exceeds declared output size"),
        }
    }
}

impl std::error::Error for CodecError {}

#[inline]
fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn put_len(out: &mut Vec<u8>, mut len: usize) {
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

/// Compresses `input` into a fresh buffer.
///
/// The output always decompresses to exactly `input` via [`decompress`]
/// with `expected_len = input.len()`. Incompressible data expands by at
/// most ~0.5% plus a few bytes.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut lit_start = 0usize;

    let emit = |out: &mut Vec<u8>, lits: &[u8], match_len: usize, offset: usize| {
        let lit_tok = lits.len().min(15);
        let mat_tok = if match_len == 0 {
            0
        } else {
            (match_len - MIN_MATCH).min(15)
        };
        out.push(((lit_tok as u8) << 4) | mat_tok as u8);
        if lit_tok == 15 {
            put_len(out, lits.len() - 15);
        }
        out.extend_from_slice(lits);
        if match_len > 0 {
            out.extend_from_slice(&(offset as u16).to_le_bytes());
            if mat_tok == 15 {
                put_len(out, match_len - MIN_MATCH - 15);
            }
        }
    };

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let cand = table[h];
        table[h] = pos;
        if cand != usize::MAX
            && pos - cand <= WINDOW
            && input[cand..cand + MIN_MATCH] == input[pos..pos + MIN_MATCH]
        {
            // Extend the match as far as possible (this is what eats the
            // long zero runs of checkpoint deltas).
            let mut len = MIN_MATCH;
            while pos + len < input.len() && input[cand + len] == input[pos + len] {
                len += 1;
            }
            emit(&mut out, &input[lit_start..pos], len, pos - cand);
            // Seed the table sparsely inside the match to keep speed linear.
            let step = (len / 16).max(1);
            let mut p = pos + 1;
            while p + MIN_MATCH <= input.len() && p < pos + len {
                table[hash4(&input[p..])] = p;
                p += step;
            }
            pos += len;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    // Trailing literals (token with match length 0).
    emit(&mut out, &input[lit_start..], 0, 0);
    out
}

/// Decompresses a [`compress`]-produced stream into exactly `expected_len`
/// bytes.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;

    let read_len = |input: &[u8], pos: &mut usize| -> Result<usize, CodecError> {
        let mut len = 0usize;
        loop {
            let b = *input.get(*pos).ok_or(CodecError::Corrupt)?;
            *pos += 1;
            len += b as usize;
            if b != 255 {
                return Ok(len);
            }
        }
    };

    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_len(input, &mut pos)?;
        }
        let lits = input.get(pos..pos + lit_len).ok_or(CodecError::Corrupt)?;
        out.extend_from_slice(lits);
        pos += lit_len;
        if out.len() > expected_len {
            return Err(CodecError::TooLong);
        }
        if pos == input.len() {
            break; // Final literals-only token.
        }
        let off_bytes = input.get(pos..pos + 2).ok_or(CodecError::Corrupt)?;
        let offset = u16::from_le_bytes([off_bytes[0], off_bytes[1]]) as usize;
        pos += 2;
        let mut match_len = (token & 0x0F) as usize + MIN_MATCH;
        if match_len == 15 + MIN_MATCH {
            match_len += read_len(input, &mut pos)?;
        }
        if offset == 0 || offset > out.len() {
            return Err(CodecError::Corrupt);
        }
        if out.len() + match_len > expected_len {
            return Err(CodecError::TooLong);
        }
        // Byte-by-byte copy: offsets smaller than the match length replicate
        // the window (run-length behaviour), exactly like LZ4.
        let start = out.len() - offset;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }
    if out.len() != expected_len {
        return Err(CodecError::Corrupt);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty() {
        roundtrip(&[]);
    }

    #[test]
    fn short_literals() {
        roundtrip(b"abc");
        roundtrip(b"abcdefghij");
    }

    #[test]
    fn zero_runs_collapse() {
        // A sparse checkpoint delta: 1 MB of zeros with 100 dirty slots.
        let mut v = vec![0u8; 1 << 20];
        for i in 0..100 {
            let off = i * 10_007 % v.len();
            v[off] = (i * 31 + 1) as u8;
        }
        let c = compress(&v);
        assert!(
            c.len() < v.len() / 100,
            "sparse delta should compress >100×, got {} → {}",
            v.len(),
            c.len()
        );
        assert_eq!(decompress(&c, v.len()).unwrap(), v);
    }

    #[test]
    fn repetitive_text() {
        let v: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .cycle()
            .take(10_000)
            .copied()
            .collect();
        let c = compress(&v);
        assert!(c.len() < v.len() / 5);
        assert_eq!(decompress(&c, v.len()).unwrap(), v);
    }

    #[test]
    fn incompressible_bounded_expansion() {
        // Pseudo-random bytes: expansion stays tiny.
        let mut x = 0x12345678u64;
        let v: Vec<u8> = (0..100_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let c = compress(&v);
        assert!(c.len() < v.len() + v.len() / 100 + 16);
        assert_eq!(decompress(&c, v.len()).unwrap(), v);
    }

    #[test]
    fn long_match_extensions() {
        // Length fields crossing the 15 and 255 continuation boundaries.
        for len in [14, 15, 16, 18, 19, 20, 269, 270, 271, 525, 60_000] {
            roundtrip(&vec![7u8; len]);
        }
    }

    #[test]
    fn corrupt_streams_rejected() {
        let good = compress(b"hello world hello world hello world");
        // Truncations must error, never panic.
        for cut in 0..good.len() {
            let _ = decompress(&good[..cut], 35);
        }
        assert!(decompress(&[0x10], 1).is_err()); // Literal missing.
        assert!(decompress(&[0x01, 0x00, 0x00], 100).is_err()); // Zero offset.
    }

    #[test]
    fn wrong_expected_len_rejected() {
        let c = compress(b"some data here");
        assert!(decompress(&c, 13).is_err());
        assert!(decompress(&c, 15).is_err());
        assert!(decompress(&c, 14).is_ok());
    }

    proptest! {
        #[test]
        fn proptest_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..5000)) {
            roundtrip(&v);
        }

        /// Structured data (few distinct bytes) round-trips and compresses.
        #[test]
        fn proptest_structured(v in proptest::collection::vec(0u8..4, 64..4096)) {
            let c = compress(&v);
            prop_assert_eq!(decompress(&c, v.len()).unwrap(), v);
        }

        /// Decompressing arbitrary garbage never panics.
        #[test]
        fn proptest_garbage_safe(v in proptest::collection::vec(any::<u8>(), 0..512),
                                 len in 0usize..2048) {
            let _ = decompress(&v, len);
        }
    }
}
