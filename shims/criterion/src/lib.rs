//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, sample_size, bench_function, finish}`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, `black_box` — backed by a
//! simple wall-clock harness: each benchmark warms up briefly, then runs
//! timed batches for a fixed budget and prints mean ns/iter (plus
//! throughput when declared). No statistics, HTML reports, or comparison
//! to saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, for derived throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the closure given to `bench_function`; `iter` times `f`.
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`: short warm-up, then batches until the time budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let warmup = Duration::from_millis(30);
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        // Batch size targeting ~1ms per batch so Instant overhead vanishes.
        let per_iter = warmup.as_nanos() as u64 / warm_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1 << 20);
        let mut total_iters: u64 = 0;
        let timed = Instant::now();
        while timed.elapsed() < budget {
            for _ in 0..batch {
                black_box(f());
            }
            total_iters += batch;
        }
        self.ns_per_iter = timed.elapsed().as_nanos() as f64 / total_iters.max(1) as f64;
    }
}

fn report(label: &str, ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{label:<40} {ns:>12.1} ns/iter");
    match throughput {
        Some(Throughput::Bytes(b)) | Some(Throughput::BytesDecimal(b)) => {
            let gib = b as f64 / ns; // bytes per ns == GB/s
            line.push_str(&format!("  {gib:>8.3} GB/s"));
        }
        Some(Throughput::Elements(e)) => {
            let meps = e as f64 * 1e3 / ns; // elements per ns → M elems/s
            line.push_str(&format!("  {meps:>8.3} M elems/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the harness is time-budgeted instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&id.id, b.ns_per_iter, None);
        self
    }
}

/// Groups benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
