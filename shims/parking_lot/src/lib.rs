//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot`'s API it actually uses, built
//! on `std::sync`. Semantics differ from the real crate in exactly one
//! deliberate way: poisoning is swallowed (`parking_lot` has no poisoning),
//! so a panicking holder does not wedge every later `lock()`.

use std::sync::{self, PoisonError};

/// Mutex with `parking_lot`'s non-poisoning `lock()` signature.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// Reader–writer lock with `parking_lot`'s non-poisoning signatures.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
