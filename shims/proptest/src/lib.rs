//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest's API the workspace uses: the `proptest!` macro,
//! `prop_assert*`, `prop_oneof!`, `Just`, `any`, ranges and tuples as
//! strategies, `collection::{vec, btree_set}`, `Strategy::prop_map`, and
//! `ProptestConfig { cases }`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message) but is not minimized.
//! * **Deterministic.** Each test derives its RNG seed from its module
//!   path + name (override the number of cases with `PROPTEST_CASES`).
//!   Runs are exactly reproducible; there is no persistence file.
//! * Default `cases` is 64 rather than 256 to keep suite runtime modest.

pub mod test_runner {
    /// Deterministic RNG driving every strategy (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed_u64(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed derived from a stable name (module path + test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a, folded once through SplitMix64's finalizer.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Why a test case failed (mirrors proptest's type where used).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Hard failure: the property does not hold.
        Fail(String),
        /// Input rejected by a precondition (counts against no budget here).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values; the sampling half of proptest's `Strategy`.
    pub trait Strategy {
        type Value;

        /// Draws one value. (Upstream separates tree creation from
        /// shrinking; with shrinking dropped this is the whole contract.)
        fn sample_one(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample_one(&self, rng: &mut TestRng) -> V {
            self.0.sample_one(rng)
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample_one(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_one(rng))
        }
    }

    /// Constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_one(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample_one(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_one(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi - lo + 1; // Wraps only for the full u64 domain.
                    if span == 0 {
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.below(span)) as $t
                    }
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn sample_one(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as u64;
                    let span = (<$t>::MAX as u64).wrapping_sub(lo).wrapping_add(1);
                    if span == 0 {
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.below(span)) as $t
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_one(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Weighted union over same-valued strategies (`prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> OneOf<V> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            OneOf { arms, total }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample_one(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample_one(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick within total")
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_one(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample_one(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates collapse, so the
    /// resulting set may be smaller than the drawn length (as upstream).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample_one(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests (see crate docs for the subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    $crate::__proptest_body!(__rng; [$($params)*] $body);
                match __result {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        e
                    ),
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($rng:ident; [] $body:block) => {
        (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            ::core::result::Result::Ok(())
        })()
    };
    ($rng:ident; [$p:pat in $s:expr, $($rest:tt)*] $body:block) => {{
        let $p = $crate::strategy::Strategy::sample_one(&($s), &mut $rng);
        $crate::__proptest_body!($rng; [$($rest)*] $body)
    }};
    ($rng:ident; [$p:pat in $s:expr] $body:block) => {{
        let $p = $crate::strategy::Strategy::sample_one(&($s), &mut $rng);
        $crate::__proptest_body!($rng; [] $body)
    }};
    ($rng:ident; [$p:ident : $t:ty, $($rest:tt)*] $body:block) => {{
        let $p: $t =
            $crate::strategy::Strategy::sample_one(&$crate::arbitrary::any::<$t>(), &mut $rng);
        $crate::__proptest_body!($rng; [$($rest)*] $body)
    }};
    ($rng:ident; [$p:ident : $t:ty] $body:block) => {{
        let $p: $t =
            $crate::strategy::Strategy::sample_one(&$crate::arbitrary::any::<$t>(), &mut $rng);
        $crate::__proptest_body!($rng; [] $body)
    }};
}

/// Weighted choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts inside a `proptest!` body; failure fails the case (no panic
/// mid-shrink upstream; here it simply reports).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    __l
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u8),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u64..(1 << 48)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < (1 << 48));
        }

        /// Mixed `name: Type` and `pat in strategy` parameters.
        #[test]
        fn mixed_params(flag: bool, v in crate::collection::vec(any::<u8>(), 0..20)) {
            prop_assert!(v.len() < 20);
            let _ = flag;
        }

        #[test]
        fn oneof_and_map(p in prop_oneof![
            3 => (0u8..10).prop_map(Pick::A),
            1 => Just(Pick::B),
        ]) {
            match p {
                Pick::A(x) => prop_assert!(x < 10),
                Pick::B => {}
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
