//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided (the sole part this workspace
//! uses), implemented over `std::sync::mpsc`. The one semantic addition
//! over raw mpsc is a `Clone + Sync` receiver, which crossbeam offers and
//! the RPC layer relies on: receivers here share the underlying mpsc
//! endpoint behind a mutex, so clones steal from one queue (crossbeam's
//! multi-consumer behavior for disjoint messages).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};
    use std::time::Duration;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel; clonable and shareable.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_fires() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
        }
    }
}
