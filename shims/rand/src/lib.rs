//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace cannot reach crates.io, so this crate supplies the small
//! surface the code actually uses: `Rng::{gen, gen_range, gen_bool,
//! fill_bytes}`, `SeedableRng::seed_from_u64`, and `rngs::StdRng`. The
//! generator is SplitMix64 — deterministic, seedable, and statistically
//! fine for workload generation and tests (it is *not* the real StdRng's
//! ChaCha12, so absolute streams differ from upstream `rand`, which no
//! test in this workspace depends on).

use std::ops::Range;

/// Sampling a value of `Self` from a stream of uniform `u64`s.
pub trait FromRandom: Sized {
    fn from_random(next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random(next: &mut dyn FnMut() -> u64) -> Self {
                next() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_random(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random(next: &mut dyn FnMut() -> u64) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range(lo: Self, hi: Self, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, next: &mut dyn FnMut() -> u64) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Modulo bias is ≤ span/2^64: irrelevant at test scale.
                let off = next() % span;
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}
sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_range(lo: Self, hi: Self, next: &mut dyn FnMut() -> u64) -> Self {
        lo + f64::from_random(next) * (hi - lo)
    }
}

/// The `rand::Rng` subset used by this workspace.
pub trait Rng {
    /// The raw 64-bit source every sampler draws from.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value of `T`.
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(&mut || self.next_u64())
    }

    /// Samples uniformly from a half-open range. Panics if empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample_range(range.start, range.end, &mut || self.next_u64())
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dst.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Construction of an RNG from seeds (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic standard RNG (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_and_floats_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let k = r.gen_range(10usize..20);
            assert!((10..20).contains(&k));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
