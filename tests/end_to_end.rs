//! Cross-crate end-to-end scenarios through the facade crate: the whole
//! stack (workloads → store → erasure/codec/index substrates) under one
//! roof, including Aceso-vs-FUSEE semantic equivalence.

use aceso::core::{recover_mn, AcesoConfig, AcesoStore};
use aceso::fusee::{FuseeConfig, FuseeStore};
use aceso::workloads::ycsb::YcsbKind;
use aceso::workloads::{value_for, Op, TwitterCluster, YcsbWorkload};
use std::collections::HashMap;
use std::sync::Arc;

fn aceso() -> Arc<AcesoStore> {
    AcesoStore::launch(AcesoConfig::small()).unwrap()
}

/// Replays the same YCSB-A stream into Aceso, FUSEE, and a HashMap oracle:
/// all three must agree on every SEARCH result.
#[test]
fn ycsb_a_agrees_with_oracle_and_fusee() {
    let keys = 300u64;
    let vlen = 120usize;
    let astore = aceso();
    let fstore = FuseeStore::launch(FuseeConfig::small());
    let mut ac = astore.client().unwrap();
    let mut fc = fstore.client();
    let mut oracle: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

    for key in YcsbWorkload::preload_keys(keys) {
        let v = value_for(&key, 0, vlen);
        ac.insert(&key, &v).unwrap();
        fc.insert(&key, &v).unwrap();
        oracle.insert(key, v);
    }
    let mut version = 1u64;
    for req in YcsbWorkload::new(YcsbKind::A, keys, 0.99, vlen, 0, 7).take(2_000) {
        match req.op {
            Op::Search => {
                let want = oracle.get(&req.key).cloned();
                assert_eq!(ac.search(&req.key).unwrap(), want, "aceso");
                assert_eq!(fc.search(&req.key).unwrap(), want, "fusee");
            }
            Op::Update => {
                version += 1;
                let v = value_for(&req.key, version, vlen);
                ac.update(&req.key, &v).unwrap();
                fc.update(&req.key, &v).unwrap();
                oracle.insert(req.key.clone(), v);
            }
            _ => unreachable!("YCSB-A has no inserts/deletes"),
        }
    }
    astore.shutdown();
}

/// A Twitter TRANSIENT stream (inserts + deletes + updates) against the
/// oracle, then an MN crash, then full verification.
#[test]
fn transient_churn_survives_mn_crash() {
    let keys = 200u64;
    let vlen = 100usize;
    let store = aceso();
    let mut c = store.client().unwrap();
    let mut oracle: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();

    for key in YcsbWorkload::preload_keys(keys) {
        let v = value_for(&key, 0, vlen);
        c.insert(&key, &v).unwrap();
        oracle.insert(key, Some(v));
    }
    let mut version = 0u64;
    for req in aceso::workloads::twitter::TwitterWorkload::new(
        TwitterCluster::Transient,
        keys,
        0.99,
        vlen,
        0,
        3,
    )
    .take(1_500)
    {
        version += 1;
        match req.op {
            Op::Search => {
                let want = oracle.get(&req.key).cloned().flatten();
                assert_eq!(c.search(&req.key).unwrap(), want);
            }
            Op::Update => {
                let v = value_for(&req.key, version, vlen);
                match c.update(&req.key, &v) {
                    Ok(()) => {
                        oracle.insert(req.key.clone(), Some(v));
                    }
                    Err(aceso::core::StoreError::NotFound) => {
                        assert!(oracle.get(&req.key).cloned().flatten().is_none());
                    }
                    Err(e) => panic!("{e}"),
                }
            }
            Op::Insert => {
                let v = value_for(&req.key, version, vlen);
                c.insert(&req.key, &v).unwrap();
                oracle.insert(req.key.clone(), Some(v));
            }
            Op::Delete => {
                let existed = c.delete(&req.key).unwrap();
                let oracle_had = oracle.insert(req.key.clone(), None).flatten().is_some();
                assert_eq!(existed, oracle_had);
            }
        }
    }
    c.close_open_blocks().unwrap();
    store.checkpoint_tick().unwrap();
    store.kill_mn(0);
    recover_mn(&store, 0).unwrap();

    let mut fresh = store.client().unwrap();
    for (key, want) in &oracle {
        assert_eq!(
            &fresh.search(key).unwrap(),
            want,
            "{:?}",
            String::from_utf8_lossy(key)
        );
    }
    store.shutdown();
}

/// The store's erasure-coded footprint beats 3-way replication for the
/// same data, at the paper's ratio.
#[test]
fn space_savings_match_xcode_ratio() {
    let store = aceso();
    let mut c = store.client().unwrap();
    for i in 0..1200u32 {
        let key = format!("sp-{i}");
        c.insert(key.as_bytes(), &value_for(key.as_bytes(), 0, 180))
            .unwrap();
    }
    c.flush_bitmaps().unwrap();
    c.close_open_blocks().unwrap();
    let u = store.memory_usage();
    // X-Code n=5 parity share is exactly 2/3 of allocated data.
    assert_eq!(u.redundancy, u.data_allocated * 2 / 3);
    // Savings vs 3×: (valid + 2/3·alloc) < 3·valid requires decent fill;
    // with closed blocks fill is high.
    assert!(u.total() < u.valid * 3, "{u:?}");
    store.shutdown();
}

/// Recovery works regardless of which column dies.
#[test]
fn every_column_is_recoverable() {
    for col in 0..5usize {
        let store = aceso();
        let mut c = store.client().unwrap();
        for i in 0..300u32 {
            let key = format!("col{col}-{i}");
            c.insert(key.as_bytes(), key.as_bytes()).unwrap();
        }
        c.close_open_blocks().unwrap();
        store.checkpoint_tick().unwrap();
        store.kill_mn(col);
        recover_mn(&store, col).unwrap();
        let mut fresh = store.client().unwrap();
        for i in (0..300u32).step_by(29) {
            let key = format!("col{col}-{i}");
            assert_eq!(
                fresh.search(key.as_bytes()).unwrap().as_deref(),
                Some(key.as_bytes()),
                "column {col}"
            );
        }
        store.shutdown();
    }
}

/// Sequential crash-recover-crash-recover cycles keep working (each
/// replacement can itself fail later).
#[test]
fn repeated_failures_of_same_column() {
    let store = aceso();
    let mut c = store.client().unwrap();
    for round in 0..3u32 {
        for i in 0..150u32 {
            let key = format!("r{round}-{i}");
            c.insert(key.as_bytes(), key.as_bytes()).unwrap();
        }
        c.close_open_blocks().unwrap();
        store.checkpoint_tick().unwrap();
        store.kill_mn(1);
        recover_mn(&store, 1).unwrap();
    }
    let mut fresh = store.client().unwrap();
    for round in 0..3u32 {
        for i in (0..150u32).step_by(37) {
            let key = format!("r{round}-{i}");
            assert_eq!(
                fresh.search(key.as_bytes()).unwrap().as_deref(),
                Some(key.as_bytes())
            );
        }
    }
    store.shutdown();
}
