//! Fault-tolerance demo: crash a memory node mid-workload, watch the
//! tiered recovery bring it back with zero data loss, then crash a client
//! mid-write and roll its torn slot back.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use aceso::core::client::CrashPoint;
use aceso::core::{recover_cn, recover_mn, AcesoConfig, AcesoStore, StoreError};

fn main() {
    let store = AcesoStore::launch(AcesoConfig::small()).expect("launch");
    let mut client = store.client().expect("client");

    println!("== phase 1: load 2000 keys ==");
    for i in 0..2000u32 {
        let key = format!("key-{i:05}");
        client
            .insert(key.as_bytes(), format!("value-of-{i}").as_bytes())
            .expect("insert");
    }
    client.close_open_blocks().expect("close");
    store.checkpoint_tick().expect("tick");
    store.checkpoint_tick().expect("tick");

    println!("== phase 2: 500 post-checkpoint updates (recovered via slot versioning) ==");
    for i in 0..500u32 {
        let key = format!("key-{i:05}");
        client
            .update(key.as_bytes(), format!("updated-{i}").as_bytes())
            .expect("update");
    }
    client.close_open_blocks().expect("close");

    println!("== phase 3: kill MN at column 2 (fail-stop) ==");
    store.kill_mn(2);

    println!("== phase 4: tiered recovery onto a fresh node ==");
    let report = recover_mn(&store, 2).expect("recover");
    println!(
        "  meta  {:6.1} ms\n  index {:6.1} ms ({} KVs scanned, {} blocks decoded, {} read)\n  block {:6.1} ms ({} old blocks)\n  total {:6.1} ms (+ {:.1} ms background parity)",
        report.read_meta_ms,
        report.read_ckpt_ms + report.recover_lblock_ms + report.read_rblock_ms + report.scan_kv_ms,
        report.kv_count,
        report.lblock_count,
        report.rblock_count,
        report.recover_old_lblock_ms,
        report.old_lblock_count,
        report.total_ms(),
        report.parity_ms,
    );

    println!("== phase 5: verify every key (old client, stale cache) ==");
    for i in 0..2000u32 {
        let key = format!("key-{i:05}");
        let want = if i < 500 {
            format!("updated-{i}")
        } else {
            format!("value-of-{i}")
        };
        let got = client
            .search(key.as_bytes())
            .expect("search")
            .expect("present");
        assert_eq!(got, want.as_bytes(), "{key}");
    }
    println!("  all 2000 keys intact, updates preserved");

    println!("== phase 6: client crash mid-write ==");
    let cli_id = client.id();
    client.crash_point = Some(CrashPoint::AfterKvWrite);
    match client.update(b"key-00000", b"torn!") {
        Err(StoreError::Shutdown) => {
            println!("  client crashed after the KV write, before the deltas")
        }
        other => panic!("expected simulated crash, got {other:?}"),
    }
    drop(client);

    let mut revived = store.client_with_id(cli_id);
    let cn = recover_cn(&store, &mut revived).expect("cn recovery");
    println!(
        "  CN recovery: {} blocks checked, {} torn slots rolled back, {} kept",
        cn.blocks_checked, cn.slots_repaired, cn.slots_kept
    );
    let got = revived
        .search(b"key-00000")
        .expect("search")
        .expect("present");
    assert_eq!(
        got, b"updated-0",
        "committed value must survive the torn write"
    );
    println!("  key-00000 still holds its committed value");

    store.shutdown();
    println!("done");
}
