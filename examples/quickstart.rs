//! Quickstart: launch a coding group, run the four KV operations, shut
//! down.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aceso::core::{AcesoConfig, AcesoStore};

fn main() {
    // Five simulated memory nodes form one coding group (the X-Code `n`).
    let store = AcesoStore::launch(AcesoConfig::small()).expect("launch");
    let mut client = store.client().expect("client");

    println!("== Aceso quickstart ==");
    println!(
        "coding group: {} MNs, {} KiB blocks, {} B region per MN",
        store.cfg.num_mns,
        store.cfg.block_size >> 10,
        store.map.region_len
    );

    // INSERT.
    client.insert(b"athena", b"owl").expect("insert");
    client.insert(b"apollo", b"lyre").expect("insert");
    client.insert(b"artemis", b"bow").expect("insert");
    println!("inserted 3 keys");

    // SEARCH.
    let v = client.search(b"athena").expect("search");
    println!("athena -> {:?}", v.as_deref().map(String::from_utf8_lossy));
    assert_eq!(v.as_deref(), Some(&b"owl"[..]));

    // UPDATE: out-of-place write + one CAS on the index slot.
    client.update(b"athena", b"aegis").expect("update");
    let v = client.search(b"athena").expect("search");
    println!("athena -> {:?}", v.as_deref().map(String::from_utf8_lossy));
    assert_eq!(v.as_deref(), Some(&b"aegis"[..]));

    // DELETE: commits a tombstone.
    assert!(client.delete(b"apollo").expect("delete"));
    assert_eq!(client.search(b"apollo").expect("search"), None);
    println!("apollo deleted");

    // A checkpoint round: every MN ships its compressed index delta to its
    // neighbour and bumps its Index Version.
    let reports = store.checkpoint_tick().expect("checkpoint");
    for (col, r) in reports.iter().enumerate() {
        println!(
            "mn{col}: index {} B -> delta {} B (version {})",
            r.raw_len, r.compressed_len, r.index_version
        );
    }

    store.shutdown();
    println!("done");
}
