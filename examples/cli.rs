//! An interactive shell over a local Aceso deployment — the kind of
//! operations tool an operator would use against a real coding group.
//!
//! ```text
//! cargo run --release --example cli
//! > put greeting hello
//! > get greeting
//! > kill 2
//! > recover 2
//! > stats
//! ```

use aceso::core::{recover_mn, AcesoConfig, AcesoStore};
use std::io::{BufRead, Write};

const HELP: &str = "\
commands:
  put <key> <value>     insert or overwrite
  get <key>             point lookup
  del <key>             delete (tombstone)
  kill <column>         fail-stop the MN serving a column
  recover <column>      tiered recovery of a failed column
  ckpt                  run one synchronized checkpoint round
  stats                 memory distribution + per-node traffic
  help                  this text
  quit                  exit";

fn main() {
    let store = AcesoStore::launch(AcesoConfig {
        num_arrays: 32,
        num_delta: 48,
        index_groups: 2048,
        ..AcesoConfig::small()
    })
    .expect("launch");
    let mut client = store.client().expect("client");
    println!(
        "aceso shell — {} MNs up. type 'help' for commands.",
        store.cfg.num_mns
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["help"] => println!("{HELP}"),
            ["quit"] | ["exit"] => break,
            ["put", key, value] => match client.insert(key.as_bytes(), value.as_bytes()) {
                Ok(()) => println!("ok"),
                Err(e) => println!("error: {e}"),
            },
            ["get", key] => match client.search(key.as_bytes()) {
                Ok(Some(v)) => println!("{}", String::from_utf8_lossy(&v)),
                Ok(None) => println!("(not found)"),
                Err(e) => println!("error: {e}"),
            },
            ["del", key] => match client.delete(key.as_bytes()) {
                Ok(true) => println!("deleted"),
                Ok(false) => println!("(was not present)"),
                Err(e) => println!("error: {e}"),
            },
            ["kill", col] => match col.parse::<usize>() {
                Ok(c) if c < store.cfg.num_mns => {
                    store.kill_mn(c);
                    println!("mn column {c} failed (fail-stop)");
                }
                _ => println!("usage: kill <0..{}>", store.cfg.num_mns - 1),
            },
            ["recover", col] => match col.parse::<usize>() {
                Ok(c) if c < store.cfg.num_mns => match recover_mn(&store, c) {
                    Ok(r) => println!(
                        "recovered: index tier {:.1} ms, total {:.1} ms, {} KVs reapplied",
                        r.index_tier_ms(),
                        r.total_ms(),
                        r.kv_count
                    ),
                    Err(e) => println!("error: {e}"),
                },
                _ => println!("usage: recover <0..{}>", store.cfg.num_mns - 1),
            },
            ["ckpt"] => match store.checkpoint_tick() {
                Ok(reps) => {
                    for (c, r) in reps.iter().enumerate() {
                        println!(
                            "mn{c}: delta {} B (iv {})",
                            r.compressed_len, r.index_version
                        );
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            ["stats"] => {
                let u = store.memory_usage();
                println!(
                    "valid {} B | parity {} B | delta {} B | allocated data {} B",
                    u.valid, u.redundancy, u.delta, u.data_allocated
                );
                for (i, node) in store.cluster.nodes().iter().enumerate() {
                    let s = node.traffic.snapshot();
                    println!(
                        "mn{i}: alive={} reads={} writes={} cas={} bytes={}",
                        node.is_alive(),
                        s.reads,
                        s.writes,
                        s.cas,
                        s.bytes()
                    );
                }
            }
            _ => println!("unknown command; try 'help'"),
        }
    }
    store.shutdown();
    println!("bye");
}
