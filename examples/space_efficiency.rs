//! Space-efficiency demo: write the same dataset into Aceso (X-Code
//! erasure coding) and FUSEE (3-way replication) and compare the Block
//! Area footprint, then overwrite heavily to exercise delta-based space
//! reclamation.
//!
//! ```text
//! cargo run --release --example space_efficiency
//! ```

use aceso::core::{AcesoConfig, AcesoStore};
use aceso::workloads::value_for;

fn human(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1} KiB", b as f64 / 1024.0)
    }
}

fn main() {
    let keys = 3000u32;
    let value_len = 991;

    // A deliberately tight Block Area (~11 MiB of data cells for a ~3 MiB
    // dataset) so overwrites exhaust fresh blocks and reclamation engages.
    let store = AcesoStore::launch(AcesoConfig {
        num_arrays: 3,
        num_delta: 24,
        index_groups: 1024,
        block_size: 256 << 10,
        reclaim_free_ratio: 1.1, // Demo: reclaim as soon as blocks qualify.
        ..AcesoConfig::small()
    })
    .expect("launch");
    let mut client = store.client().expect("client");

    println!("== writing {keys} KV pairs of ~1 KiB ==");
    for i in 0..keys {
        let key = format!("space-{i:06}");
        client
            .insert(key.as_bytes(), &value_for(key.as_bytes(), 0, value_len))
            .expect("insert");
    }
    client.flush_bitmaps().expect("flush");
    client.close_open_blocks().expect("close");

    let u = store.memory_usage();
    let fusee_valid = u.valid; // Same dataset.
    let fusee_total = fusee_valid * 3; // 3-way replication.
    println!("\nBlock Area footprint:");
    println!(
        "  Aceso : valid {} + parity {} + delta {} = {}",
        human(u.valid),
        human(u.redundancy),
        human(u.delta),
        human(u.total())
    );
    println!(
        "  FUSEE : valid {} + replicas {}         = {}",
        human(fusee_valid),
        human(fusee_valid * 2),
        human(fusee_total)
    );
    println!(
        "  Aceso saves {:.0}% (X-Code n=5: parity is 2/3 of data vs 2 extra full copies)",
        (1.0 - u.total() as f64 / fusee_total as f64) * 100.0
    );

    println!("\n== overwriting every key 6x to trigger delta-based reclamation ==");
    for round in 1..=6u64 {
        for i in 0..keys {
            let key = format!("space-{i:06}");
            client
                .update(key.as_bytes(), &value_for(key.as_bytes(), round, value_len))
                .expect("update");
        }
        client.flush_bitmaps().expect("flush");
        let u = store.memory_usage();
        println!(
            "  round {round}: valid {} | data blocks allocated {} | delta {}",
            human(u.valid),
            human(u.data_allocated),
            human(u.delta)
        );
    }
    println!("\nallocated data stays bounded: obsolete KV slots are overwritten in");
    println!("reclaimed blocks and the parity is patched by XORing deltas (§3.3.3).");

    // Verify final contents.
    for i in (0..keys).step_by(311) {
        let key = format!("space-{i:06}");
        let got = client
            .search(key.as_bytes())
            .expect("search")
            .expect("present");
        assert_eq!(got, value_for(key.as_bytes(), 6, value_len));
    }
    println!("spot-checked final values: all correct");
    store.shutdown();
}
