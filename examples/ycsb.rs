//! YCSB comparison: run the four core workloads against both Aceso and the
//! FUSEE replication baseline and print the modeled throughput.
//!
//! ```text
//! cargo run --release --example ycsb [keys] [ops]
//! ```

use aceso::core::{AcesoConfig, AcesoStore};
use aceso::fusee::{FuseeConfig, FuseeStore};
use aceso::workloads::ycsb::YcsbKind;
use aceso::workloads::{value_for, Op, YcsbWorkload};
use aceso_rdma::PhaseMeasurement;

fn main() {
    let mut args = std::env::args().skip(1);
    let keys: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let ops: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let value_len = 991; // 1 KB KV pairs like the paper.

    println!("== YCSB: {keys} keys, {ops} ops per workload ==\n");
    println!("workload |   Aceso |   FUSEE | ratio");

    for kind in YcsbKind::ALL {
        // --- Aceso ---
        let store = AcesoStore::launch(AcesoConfig {
            num_arrays: 64,
            num_delta: 64,
            index_groups: 2048,
            block_size: 256 << 10,
            ..AcesoConfig::small()
        })
        .expect("launch");
        let mut client = store.client().expect("client");
        for key in YcsbWorkload::preload_keys(keys) {
            client
                .insert(&key, &value_for(&key, 0, value_len))
                .expect("preload");
        }
        client.close_open_blocks().expect("close");
        store.cluster.reset_traffic();
        client.dm.reset_stats();
        for req in YcsbWorkload::new(kind, keys, 0.99, value_len, 0, 42).take(ops) {
            match req.op {
                Op::Search => {
                    client.search(&req.key).expect("search");
                }
                Op::Update => {
                    client
                        .update(&req.key, &value_for(&req.key, 1, req.value_len))
                        .expect("update");
                }
                _ => {
                    client
                        .insert(&req.key, &value_for(&req.key, 1, req.value_len))
                        .expect("insert");
                }
            }
        }
        let m = PhaseMeasurement {
            n_clients: 184,
            node_fg: store
                .cluster
                .nodes()
                .iter()
                .map(|n| n.traffic.snapshot())
                .collect(),
            bg_bytes_per_sec: vec![],
            records: client.dm.take_ops().records,
            pipeline_depth: None,
        };
        let aceso_mops = store.cfg.cost.report(&m).mops;
        store.shutdown();

        // --- FUSEE ---
        let fstore = FuseeStore::launch(FuseeConfig {
            index_groups: 2048,
            block_size: 256 << 10,
            blocks_per_mn: 1024,
            ..FuseeConfig::small()
        });
        let mut fclient = fstore.client();
        for key in YcsbWorkload::preload_keys(keys) {
            fclient
                .insert(&key, &value_for(&key, 0, value_len))
                .expect("preload");
        }
        fstore.cluster.reset_traffic();
        fclient.dm.reset_stats();
        for req in YcsbWorkload::new(kind, keys, 0.99, value_len, 0, 42).take(ops) {
            match req.op {
                Op::Search => {
                    fclient.search(&req.key).expect("search");
                }
                Op::Update => {
                    fclient
                        .update(&req.key, &value_for(&req.key, 1, req.value_len))
                        .expect("update");
                }
                _ => {
                    fclient
                        .insert(&req.key, &value_for(&req.key, 1, req.value_len))
                        .expect("insert");
                }
            }
        }
        let m = PhaseMeasurement {
            n_clients: 184,
            node_fg: fstore
                .cluster
                .nodes()
                .iter()
                .map(|n| n.traffic.snapshot())
                .collect(),
            bg_bytes_per_sec: vec![],
            records: fclient.dm.take_ops().records,
            pipeline_depth: None,
        };
        let fusee_mops = fstore.cfg.cost.report(&m).mops;

        println!(
            "{:8} | {:7.2} | {:7.2} | {:4.2}x",
            kind.name(),
            aceso_mops,
            fusee_mops,
            aceso_mops / fusee_mops
        );
    }
    println!("\n(throughput from the calibrated NIC model over measured verb profiles)");
}
